"""Tests for the sharded serving cluster (``repro.cluster``).

Covers the acceptance gates of PR 5 — near-linear 1→2→4 shard throughput
scaling on the virtual-time engine and the ScaleGovernor holding p95 under
target by degrading scale instead of shedding — plus the unit behaviour of
every cluster component: service model, scenario suite (determinism + JSONL
round-trips), router policies and admission control, governor/autoscaler
feedback logic, the simulation engine, the in-process replica backend with
its real control surface, the ReplicaSpec process seam, and the CLI command.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import api
from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterConfig,
    ClusterController,
    GovernorConfig,
    InProcessReplica,
    ReplicaSpec,
    Router,
    RouterConfig,
    ScaleGovernor,
    ScenarioConfig,
    ServiceModel,
    WorkloadTrace,
    analytic_service_model,
    build_scenario,
    calibrate_service_model,
    run_scaling_suite,
    run_slo_suite,
)
from repro.config import AdaScaleConfig, ServingConfig
from repro.evaluation.runtime import RuntimeStats
from repro.registries import (
    CLUSTER_AUTOSCALERS,
    CLUSTER_GOVERNORS,
    CLUSTER_SCENARIOS,
    ROUTING_POLICIES,
)

ADA = AdaScaleConfig()  # ladder (128, 96, 72, 48, 32)
SERVING = ServingConfig(num_workers=2, max_batch_size=4, queue_capacity=64)


# -- service model -------------------------------------------------------------
class TestServiceModel:
    def test_analytic_tracks_area(self):
        model = analytic_service_model(ADA, base_frame_ms=8.0, overhead_ms=0.0)
        times = [model.frame_time_s(scale) for scale in ADA.regressor_scales]
        assert times == sorted(times, reverse=True)  # smaller scale, faster
        # Area proportionality: quartering the scale sixteenths the conv cost.
        assert model.frame_time_s(32) == pytest.approx(
            model.frame_time_s(128) / 16.0, rel=0.01
        )

    def test_interpolates_unprofiled_scales(self):
        model = analytic_service_model(ADA)
        t96, t72, t84 = (model.frame_time_s(s) for s in (96, 72, 84))
        assert t72 < t84 < t96

    def test_batch_amortisation(self):
        model = ServiceModel(
            scales=(96, 48), frame_ms=(8.0, 2.0), batch_marginal=0.5, overhead_ms=0.0
        )
        single = model.batch_time_s(96, 1)
        four = model.batch_time_s(96, 4)
        assert four == pytest.approx(single * (1 + 0.5 * 3))
        assert four / 4 < single  # per-frame cost drops inside a batch
        with pytest.raises(ValueError):
            model.batch_time_s(96, 0)

    def test_serializes_and_validates(self):
        model = analytic_service_model(ADA)
        clone = ServiceModel.from_dict(model.to_dict())
        assert clone == model
        with pytest.raises(ValueError):
            ServiceModel(scales=(48, 96), frame_ms=(1.0, 2.0)).validate()  # ascending
        with pytest.raises(ValueError):
            ServiceModel(scales=(96,), frame_ms=(0.0,)).validate()


# -- scenarios -----------------------------------------------------------------
class TestScenarios:
    def test_catalog_registered(self):
        names = set(CLUSTER_SCENARIOS.names())
        assert {"steady", "diurnal", "flash_crowd", "heavy_tail", "slo_surge", "trace"} <= names

    @pytest.mark.parametrize("name", ["steady", "diurnal", "flash_crowd", "heavy_tail", "slo_surge"])
    def test_deterministic_under_seed(self, name):
        config = ScenarioConfig(name=name, duration_s=5.0, num_streams=4, rate_fps=20.0, seed=9)
        first, second = build_scenario(config), build_scenario(config)
        assert first == second
        assert first != build_scenario(config.with_(seed=10))

    def test_traces_are_well_formed(self):
        for name in ("steady", "diurnal", "flash_crowd", "heavy_tail", "slo_surge"):
            trace = build_scenario(
                ScenarioConfig(name=name, duration_s=4.0, num_streams=3, rate_fps=15.0, seed=2)
            )
            assert trace.num_streams >= 3
            assert trace.num_frames > 0
            times = [event.time_s for event in trace]
            assert times == sorted(times)

    def test_flash_crowd_adds_and_removes_streams(self):
        config = ScenarioConfig(
            name="flash_crowd", duration_s=10.0, num_streams=4, rate_fps=20.0,
            peak_multiplier=3.0, seed=1,
        )
        trace = build_scenario(config)
        assert trace.num_streams == 4 + 2 * 4  # base + (peak-1) * base crowd
        closes = [e for e in trace if e.kind == "close"]
        # Crowd streams close before the trace ends; base streams at the end.
        assert min(e.time_s for e in closes) < config.duration_s - 1e-6

    def test_slo_surge_rate_steps_up(self):
        config = ScenarioConfig(
            name="slo_surge", duration_s=20.0, num_streams=4, rate_fps=10.0,
            peak_multiplier=5.0, surge_start_frac=0.4, surge_duration_frac=0.3, seed=3,
        )
        trace = build_scenario(config)
        frames = [e.time_s for e in trace if e.kind == "frame"]
        calm = sum(1 for t in frames if t < 8.0) / 8.0
        surged = sum(1 for t in frames if 8.0 <= t < 14.0) / 6.0
        assert surged > 3.0 * calm  # the plateau really is an overload

    def test_jsonl_round_trip(self, tmp_path):
        trace = build_scenario(
            ScenarioConfig(name="flash_crowd", duration_s=4.0, num_streams=3, seed=5)
        )
        path = trace.save_jsonl(tmp_path / "trace.jsonl")
        loaded = WorkloadTrace.load_jsonl(path)
        assert loaded == trace
        # And the `trace` scenario replays the same file.
        replayed = build_scenario(ScenarioConfig(name="trace", trace_path=str(path)))
        assert replayed == trace

    def test_malformed_trace_rejected(self):
        from repro.cluster.scenarios import TraceEvent

        with pytest.raises(ValueError, match="outside"):
            WorkloadTrace([TraceEvent(time_s=0.0, stream_id=0, kind="frame")])
        with pytest.raises(ValueError, match="opened twice"):
            WorkloadTrace(
                [
                    TraceEvent(time_s=0.0, stream_id=0, kind="open"),
                    TraceEvent(time_s=1.0, stream_id=0, kind="open"),
                ]
            )

    def test_new_arrival_patterns_registered(self):
        from repro.registries import ARRIVAL_PATTERNS
        from repro.serving import LoadGenerator

        assert "diurnal" in ARRIVAL_PATTERNS and "flash-crowd" in ARRIVAL_PATTERNS
        for pattern in ("diurnal", "flash-crowd"):
            events = LoadGenerator(
                num_streams=2, frames_per_stream=30, pattern=pattern, rate_fps=50.0, seed=4
            ).schedule()
            assert len(events) == 60
            for stream in range(2):
                stamps = [e.time_s for e in events if e.stream_id == stream]
                assert sorted(stamps) == stamps


# -- router --------------------------------------------------------------------
class _FakeShard:
    def __init__(self, shard_id, streams=0, accepting=True):
        self.shard_id = shard_id
        self.active_streams = streams
        self.accepting = accepting


class TestRouter:
    def test_least_loaded_balances(self):
        shards = [_FakeShard(0), _FakeShard(1), _FakeShard(2)]
        router = Router(RouterConfig(policy="least-loaded"))
        for stream_id in range(9):
            shard = router.assign(stream_id, shards)
            shard.active_streams += 1
        assert [s.active_streams for s in shards] == [3, 3, 3]

    def test_hash_placement_is_stable(self):
        shards = [_FakeShard(i) for i in range(4)]
        first = [
            Router(RouterConfig(policy="hash")).assign(stream, shards).shard_id
            for stream in range(16)
        ]
        second = [
            Router(RouterConfig(policy="hash")).assign(stream, shards).shard_id
            for stream in range(16)
        ]
        assert first == second  # stable across router instances (blake2, not hash())
        assert len(set(first)) > 1  # actually spreads
        salted = [
            Router(RouterConfig(policy="hash", hash_seed=7)).assign(s, shards).shard_id
            for s in range(16)
        ]
        assert salted != first  # the salt re-shuffles placement

    def test_admission_cap_rejects_streams(self):
        shards = [_FakeShard(0), _FakeShard(1)]
        router = Router(RouterConfig(policy="least-loaded", max_streams_per_shard=2))
        placed = 0
        for stream_id in range(6):
            shard = router.assign(stream_id, shards)
            if shard is not None:
                shard.active_streams += 1
                placed += 1
        assert placed == 4  # 2 shards x cap 2
        assert router.rejected_streams == 2

    def test_draining_shard_not_a_candidate(self):
        shards = [_FakeShard(0), _FakeShard(1, accepting=False)]
        router = Router(RouterConfig(policy="least-loaded"))
        for stream_id in range(4):
            assert router.assign(stream_id, shards).shard_id == 0

    def test_unrouted_frames_counted(self):
        router = Router(RouterConfig())
        assert router.lookup(42) is None
        assert router.rejected_frames == 1

    def test_release_forgets_assignment(self):
        shards = [_FakeShard(0)]
        router = Router(RouterConfig())
        shard = router.assign(5, shards)
        assert router.lookup(5) is shard
        assert router.release(5) is shard
        assert router.lookup(5) is None


# -- governor ------------------------------------------------------------------
class _FakeControlShard:
    """Minimal control-surface stub for exercising the feedback logic."""

    def __init__(self, shard_id=0, batch=4):
        self.shard_id = shard_id
        self.scale_cap = None
        self.max_batch_size = batch
        self.baseline_batch_size = batch
        self.queue_depth = 0
        self.latency_ms: list[float] = []

    def recent_latency(self, window):
        return RuntimeStats(samples_s=[ms / 1000.0 for ms in self.latency_ms[-window:]])

    def set_scale_cap(self, cap):
        self.scale_cap = cap

    def set_max_batch_size(self, size):
        self.max_batch_size = size


class TestScaleGovernor:
    LADDER = (96, 72, 48, 36, 24)

    def _governor(self, **overrides):
        return ScaleGovernor(
            self.LADDER,
            GovernorConfig(
                target_p95_ms=100.0, warmup_completions=4, window=16,
                release_steps=2, queue_alarm_depth=10,
            ).with_(**overrides),
        )

    def test_degrades_down_the_ladder_under_pressure(self):
        governor = self._governor()
        shard = _FakeControlShard()
        shard.latency_ms = [150.0] * 16  # over target, under the 2x panic line
        for expected in (72, 48, 36, 24):
            actions = governor.step([shard], now=1.0)
            assert [a.action for a in actions] == ["degrade"]
            assert actions[0].knob == "scale_cap" and actions[0].new == expected
            assert shard.scale_cap == expected
        # Ladder exhausted: the batch bound starts shrinking.
        actions = governor.step([shard], now=2.0)
        assert actions[0].knob == "max_batch_size" and shard.max_batch_size == 2
        governor.step([shard], now=3.0)
        assert shard.max_batch_size == 1
        # Fully degraded: nothing left to trade, no action.
        assert governor.step([shard], now=4.0) == []

    def test_panic_steps_two_rungs_on_extreme_pressure(self):
        governor = self._governor()
        shard = _FakeControlShard()
        shard.latency_ms = [400.0] * 16  # 4x over target: compound backlog
        actions = governor.step([shard], now=1.0)
        assert [a.new for a in actions] == [72, 48]
        assert shard.scale_cap == 48

    def test_queue_alarm_triggers_without_latency_signal(self):
        governor = self._governor()
        shard = _FakeControlShard()
        shard.queue_depth = 15  # nothing completed yet, but the queue is piling up
        actions = governor.step([shard], now=0.5)
        assert len(actions) == 1 and shard.scale_cap == 72
        # A queue 4x over the alarm escalates to panic stepping.
        panicked = _FakeControlShard(shard_id=1)
        panicked.queue_depth = 50
        actions = governor.step([panicked], now=0.5)
        assert len(actions) == 2 and panicked.scale_cap == 48

    def test_warmup_gates_the_latency_signal(self):
        governor = self._governor()
        shard = _FakeControlShard()
        shard.latency_ms = [500.0] * 2  # under warmup_completions
        assert governor.step([shard], now=0.5) == []

    def test_restores_only_after_consecutive_calm_steps(self):
        governor = self._governor()
        shard = _FakeControlShard()
        shard.latency_ms = [150.0] * 16
        governor.step([shard], now=1.0)
        assert shard.scale_cap == 72
        shard.latency_ms = [10.0] * 16  # calm (well under release fraction)
        assert governor.step([shard], now=2.0) == []  # first calm step: not yet
        actions = governor.step([shard], now=3.0)
        assert [a.action for a in actions] == ["restore"]
        assert shard.scale_cap is None  # back to full quality

    def test_hysteresis_band_holds_state(self):
        governor = self._governor()
        shard = _FakeControlShard()
        shard.latency_ms = [150.0] * 16
        governor.step([shard], now=1.0)
        shard.latency_ms = [80.0] * 16  # under target but above release fraction
        for tick in range(5):
            assert governor.step([shard], now=2.0 + tick) == []
        assert shard.scale_cap == 72  # neither degraded further nor restored

    def test_batch_restore_retraces_non_power_of_two_baselines(self):
        governor = self._governor()
        shard = _FakeControlShard(batch=6)
        # Keep the shard over target until the ladder AND the batch knob are
        # exhausted: 4 scale rungs, then batch 6 -> 3 -> 1.
        shard.latency_ms = [150.0] * 16
        for tick in range(8):
            if not governor.step([shard], now=1.0 + tick):
                break
        assert shard.scale_cap == min(self.LADDER)
        assert shard.max_batch_size == 1
        # Calm restores must retrace 1 -> 3 -> 6, not double into 1 -> 2 -> 4.
        shard.latency_ms = [10.0] * 16
        restored = []
        for tick in range(16):
            for action in governor.step([shard], now=20.0 + tick):
                if action.knob == "max_batch_size":
                    restored.append(action.new)
        assert restored == [3, 6]
        assert shard.max_batch_size == shard.baseline_batch_size

    def test_registered_and_buildable_from_spec(self):
        governor = CLUSTER_GOVERNORS.build(
            {"type": "slo-scale", "ladder": (96, 48), "target_p95_ms": 50.0}
        )
        assert isinstance(governor, ScaleGovernor)
        assert governor.config.target_p95_ms == 50.0


class TestAutoscaler:
    def _shards(self, occupancies):
        shards = []
        for index, occupancy in enumerate(occupancies):
            shard = _FakeControlShard(shard_id=index)
            shard.occupancy = occupancy
            shard.accepting = True
            shards.append(shard)
        return shards

    def test_scales_up_on_pressure(self):
        scaler = Autoscaler(AutoscalerConfig(enabled=True, cooldown_s=0.0, max_shards=4))
        assert scaler.desired_shards(self._shards([2.0, 1.5]), now=0.0) == 3

    def test_scales_down_on_idle(self):
        scaler = Autoscaler(AutoscalerConfig(enabled=True, cooldown_s=0.0, min_shards=1))
        assert scaler.desired_shards(self._shards([0.1, 0.05]), now=0.0) == 1

    def test_cooldown_suppresses_flapping(self):
        scaler = Autoscaler(AutoscalerConfig(enabled=True, cooldown_s=10.0, max_shards=8))
        busy = self._shards([2.0, 2.0])
        assert scaler.desired_shards(busy, now=0.0) == 3
        assert scaler.desired_shards(busy, now=1.0) == 2  # cooling down: hold
        assert scaler.desired_shards(busy, now=11.0) == 3

    def test_bounds_respected(self):
        scaler = Autoscaler(AutoscalerConfig(enabled=True, cooldown_s=0.0, max_shards=2))
        assert scaler.desired_shards(self._shards([3.0, 3.0]), now=0.0) == 2
        assert CLUSTER_AUTOSCALERS.get("occupancy") is Autoscaler


# -- simulation ----------------------------------------------------------------
def _simulate(scenario: ScenarioConfig, cluster: ClusterConfig, serving=SERVING, seed=0):
    controller = ClusterController(
        cluster=cluster,
        serving=serving,
        adascale=ADA,
        model=analytic_service_model(ADA),
        seed=seed,
    )
    return controller.run(scenario)


class TestSimulation:
    def test_deterministic_report(self):
        scenario = ScenarioConfig(name="flash_crowd", duration_s=5.0, num_streams=4, seed=3)
        cluster = ClusterConfig(num_shards=2)
        first = _simulate(scenario, cluster).to_dict()
        second = _simulate(scenario, cluster).to_dict()
        assert first == second

    def test_lossless_block_serves_everything(self):
        scenario = ScenarioConfig(name="steady", duration_s=4.0, num_streams=4, rate_fps=30.0)
        report = _simulate(scenario, ClusterConfig(num_shards=2))
        assert report.shed == 0
        assert report.completed == report.submitted > 0
        assert report.streams_rejected == 0
        assert {shard.shard_id for shard in report.shards} == {0, 1}

    def test_reject_policy_sheds_under_overload(self):
        scenario = ScenarioConfig(
            name="steady", duration_s=4.0, num_streams=8, rate_fps=400.0, seed=1
        )
        serving = SERVING.with_(backpressure="reject", queue_capacity=8)
        report = _simulate(scenario, ClusterConfig(num_shards=1), serving=serving)
        assert report.shed > 0
        assert report.completed + report.shed == report.submitted
        assert 0.0 < report.shed_rate < 1.0

    def test_deadline_expiry_counts(self):
        scenario = ScenarioConfig(
            name="steady", duration_s=3.0, num_streams=8, rate_fps=300.0, seed=2
        )
        serving = SERVING.with_(deadline_ms=20.0)
        report = _simulate(scenario, ClusterConfig(num_shards=1), serving=serving)
        assert report.shed > 0  # overload + tight deadline must expire frames

    def test_router_cap_rejects_streams_in_simulation(self):
        cluster = ClusterConfig(
            num_shards=1, router=RouterConfig(max_streams_per_shard=2)
        )
        scenario = ScenarioConfig(name="steady", duration_s=2.0, num_streams=5, rate_fps=10.0)
        report = _simulate(scenario, cluster)
        assert report.streams_rejected == 3
        assert report.streams_opened == 2

    def test_autoscaler_grows_and_shrinks_fleet(self):
        cluster = ClusterConfig(
            num_shards=1,
            governor=GovernorConfig(enabled=False),
            autoscaler=AutoscalerConfig(
                enabled=True, interval_s=0.2, cooldown_s=0.4, max_shards=4
            ),
        )
        scenario = ScenarioConfig(
            name="slo_surge", duration_s=12.0, num_streams=8, rate_fps=30.0,
            peak_multiplier=8.0, seed=4,
        )
        report = _simulate(scenario, cluster)
        ups = [a for a in report.timeline if a.action == "scale-up"]
        downs = [a for a in report.timeline if a.action == "scale-down"]
        assert ups  # the surge forced the fleet to grow
        assert downs  # the calm tail drained it again
        assert report.num_shards > 1


# -- the acceptance gates ------------------------------------------------------
class TestScalingAndSLOGates:
    """The two claims BENCH_cluster_scaling.json ships (fast, analytic model)."""

    def test_near_linear_shard_scaling(self):
        # rate_fps=None derives a saturating offered load from the model's
        # capacity bound — the same sizing the benchmark uses on calibrated
        # models, exercised here on the analytic one.
        reports = run_scaling_suite(
            analytic_service_model(ADA), SERVING, ADA,
            shard_counts=(1, 2, 4), num_streams=32, duration_s=3.0,
        )
        base = reports[1].throughput_fps
        assert base > 0
        ratio_2 = reports[2].throughput_fps / base
        ratio_4 = reports[4].throughput_fps / base
        assert ratio_2 >= 1.7, f"2-shard scaling only {ratio_2:.2f}x"
        assert ratio_4 >= 3.0, f"4-shard scaling only {ratio_4:.2f}x"
        # Lossless and identical frame populations: capacity, not admission.
        for report in reports.values():
            assert report.shed == 0
            assert report.completed == reports[1].completed

    def test_governor_holds_p95_by_degrading_not_shedding(self):
        model = analytic_service_model(ADA)
        # Target sized relative to the model's top-scale cost, the same rule
        # the benchmark applies to calibrated models (floor at 200ms).
        target = max(200.0, 40.0 * 1000.0 * model.frame_time_s(max(ADA.regressor_scales)))
        reports = run_slo_suite(model, SERVING, ADA, target_p95_ms=target, num_shards=2)
        governed, ungoverned = reports["governed"], reports["ungoverned"]
        # Same offered workload on both legs.
        assert governed.submitted == ungoverned.submitted
        # The overload is real: open-loop full quality blows the SLO...
        assert ungoverned.p95_ms > target
        # ...while the governor holds it by walking scale caps down,
        assert governed.p95_ms <= target, (
            f"governed p95 {governed.p95_ms:.1f}ms over the {target}ms target"
        )
        degrades = [a for a in governed.timeline if a.action == "degrade"]
        assert degrades and any(a.knob == "scale_cap" for a in degrades)
        # ...without shedding a single frame (block policy, quality-only trade).
        assert governed.shed == 0 and ungoverned.shed == 0
        # And quality returns once the surge passes.
        restores = [a for a in governed.timeline if a.action == "restore"]
        assert restores


# -- real in-process backend ---------------------------------------------------
class TestInProcessCluster:
    def test_scale_cap_clamps_real_server(self, micro_bundle):
        serving = ServingConfig(num_workers=1, max_batch_size=2, queue_capacity=16)
        replica = InProcessReplica(0, micro_bundle, serving).start()
        try:
            replica.open_stream(0)
            frames = list(micro_bundle.val_dataset)[0].frames()
            replica.set_scale_cap(32)
            assert replica.scale_cap == 32
            requests = [
                replica.submit(0, frame.image, index) for index, frame in enumerate(frames)
            ]
            assert replica.drain(timeout=120.0)
            results = [request.result(timeout=1.0) for request in requests]
            assert all(result.ok for result in results)
            assert all(result.scale_used <= 32 for result in results)
        finally:
            replica.stop()
        # Telemetry flowed through the real ServerMetrics.
        assert replica.metrics.snapshot().completed == len(frames)

    def test_set_max_batch_size_applies_at_runtime(self, micro_bundle):
        serving = ServingConfig(num_workers=1, max_batch_size=4, queue_capacity=16)
        replica = InProcessReplica(0, micro_bundle, serving)
        assert replica.max_batch_size == 4
        replica.set_max_batch_size(1)
        assert replica.max_batch_size == 1
        assert replica.server.scheduler.max_batch_size == 1
        with pytest.raises(ValueError):
            replica.set_max_batch_size(0)

    def test_inprocess_cluster_end_to_end(self, micro_bundle):
        cluster = ClusterConfig(
            num_shards=2, mode="inprocess", governor=GovernorConfig(enabled=False)
        )
        controller = ClusterController(
            cluster=cluster,
            serving=ServingConfig(num_workers=1, max_batch_size=2, queue_capacity=64),
            adascale=micro_bundle.config.adascale,
            bundle=micro_bundle,
        )
        scenario = ScenarioConfig(
            name="steady", duration_s=2.0, num_streams=4, rate_fps=15.0, seed=6
        )
        report = controller.run(scenario, time_scale=0.0)
        assert report.mode == "inprocess"
        assert report.completed == report.submitted > 0
        assert report.shed == 0
        # Least-loaded placement spread the 4 streams over both shards.
        assert all(shard.completed > 0 for shard in report.shards)
        json.dumps(report.to_dict(), allow_nan=False)  # strict-JSON clean

    def test_governor_degrades_real_cluster_under_impossible_slo(self, micro_bundle):
        cluster = ClusterConfig(
            num_shards=1,
            mode="inprocess",
            governor=GovernorConfig(
                target_p95_ms=0.01,  # unmeetable: force the feedback loop to act
                interval_s=0.01,
                warmup_completions=2,
                window=8,
            ),
        )
        controller = ClusterController(
            cluster=cluster,
            serving=ServingConfig(num_workers=1, max_batch_size=2, queue_capacity=64),
            adascale=micro_bundle.config.adascale,
            bundle=micro_bundle,
        )
        scenario = ScenarioConfig(
            name="steady", duration_s=1.5, num_streams=3, rate_fps=30.0, seed=7
        )
        report = controller.run(scenario, time_scale=0.5)
        degrades = [a for a in report.timeline if a.action == "degrade"]
        assert degrades, "governor never acted on a real cluster"
        assert any(a.knob == "scale_cap" for a in degrades)
        # The cap is live on the shard (ladder (64, 48, 32, 24): capped < 64).
        assert report.shards[0].final_scale_cap in (24, 32, 48)


class TestReplicaSpec:
    def test_pickle_round_trip_and_build(self, micro_bundle, micro_config, tmp_path):
        bundle_dir = micro_bundle.save(tmp_path / "bundle")
        spec = ReplicaSpec.for_bundle_dir(
            3, micro_config, micro_config.serving, bundle_dir
        )
        assert spec.roundtrips_by_pickle()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        # The spawn seam: a worker process would run exactly this.
        replica = clone.build(dataset_cls=type(micro_bundle.val_dataset))
        assert replica.shard_id == 3
        replica.start()
        try:
            replica.open_stream(0)
            frame = list(micro_bundle.val_dataset)[0].frames()[0]
            result = replica.submit(0, frame.image, 0).result(timeout=60.0)
            assert result.ok
        finally:
            replica.stop()


# -- facade / config / CLI -----------------------------------------------------
class TestClusterConfigAndFacade:
    def test_cluster_config_round_trips(self):
        config = ClusterConfig(
            num_shards=3,
            router=RouterConfig(policy="hash", max_streams_per_shard=7),
            governor=GovernorConfig(target_p95_ms=123.0, release_steps=2),
            autoscaler=AutoscalerConfig(enabled=True, max_shards=5),
        )
        clone = ClusterConfig.from_dict(config.to_dict())
        assert clone == config
        assert ClusterConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_validation_catches_inconsistencies(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_shards=0).validate()
        with pytest.raises(ValueError):
            ClusterConfig(mode="warp").validate()
        with pytest.raises(ValueError):
            RouterConfig(policy="telepathy").validate()
        with pytest.raises(ValueError):
            GovernorConfig(target_p95_ms=-1.0).validate()
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_down_at=0.9, scale_up_at=0.5).validate()
        with pytest.raises(ValueError):
            ScenarioConfig(duration_s=0.0).validate()
        with pytest.raises(ValueError):
            ClusterConfig(
                num_shards=9, autoscaler=AutoscalerConfig(enabled=True, max_shards=8)
            ).validate()

    def test_routing_policies_registered(self):
        assert {"hash", "least-loaded"} <= set(ROUTING_POLICIES.names())

    def test_facade_runs_scenario_without_training(self):
        facade = api.Cluster(
            cluster=ClusterConfig(num_shards=2),
            serving=SERVING,
            adascale=ADA,
            service_model=analytic_service_model(ADA),
        )
        report = facade.run_scenario(
            "flash_crowd", duration_s=4.0, num_streams=4, rate_fps=20.0
        )
        assert report.num_shards == 2
        assert report.completed > 0
        assert "Cluster report" in report.format()

    def test_facade_requires_model_or_bundle(self):
        with pytest.raises(ValueError):
            api.Cluster()

    def test_run_scenario_overrides_do_not_mutate_the_facade(self):
        facade = api.Cluster(
            cluster=ClusterConfig(num_shards=2),
            serving=SERVING,
            adascale=ADA,
            service_model=analytic_service_model(ADA),
        )
        report = facade.run_scenario(
            "steady", shards=4, duration_s=2.0, num_streams=4, rate_fps=15.0
        )
        assert report.num_shards == 4
        assert facade.cluster.num_shards == 2  # per-run override only

    def test_from_config_defers_training_for_analytic_simulation(self):
        # calibrate=False + simulate mode must never touch the training
        # pipeline; 'vid' would take minutes if it did.
        facade = api.Cluster.from_config(
            "vid", calibrate=False, cluster={"num_shards": 2}
        )
        report = facade.run_scenario(
            "steady", duration_s=1.0, num_streams=2, rate_fps=10.0
        )
        assert report.completed > 0
        assert facade._bundle is None  # still untrained

    def test_inprocess_autoscaler_rejected_loudly(self, micro_bundle):
        with pytest.raises(ValueError, match="autoscaler"):
            ClusterController(
                cluster=ClusterConfig(
                    num_shards=1,
                    mode="inprocess",
                    autoscaler=AutoscalerConfig(enabled=True),
                ),
                serving=SERVING,
                adascale=micro_bundle.config.adascale,
                bundle=micro_bundle,
            )

    def test_flash_crowd_short_surge_still_valid(self):
        # A surge window narrower than the default join ramp must clamp the
        # ramp, not generate close-before-open events.
        trace = build_scenario(
            ScenarioConfig(
                name="flash_crowd", duration_s=30.0, num_streams=2,
                surge_duration_frac=0.01, seed=11,
            )
        )
        assert trace.num_streams > 2  # the crowd still joined

    def test_calibrated_model_measures_real_detector(self, micro_bundle):
        model = calibrate_service_model(micro_bundle, frames_per_scale=2, repeats=3, batch_size=2)
        assert model.scales == tuple(micro_bundle.config.adascale.regressor_scales)
        assert all(ms > 0 for ms in model.frame_ms)
        # Median-of-3 timings on a loaded single-core box still jitter, so only
        # pin the gross shape: the bottom of the ladder must not measurably
        # dominate the top (half price covers any realistic noise spike).
        assert model.frame_ms[-1] < 2.0 * model.frame_ms[0]
        assert 0.0 <= model.batch_marginal <= 1.0
        model.validate()


class TestClusterCLI:
    def test_cluster_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "report.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "cluster", "--shards", "4", "--scenario", "flash_crowd",
                "--no-calibrate", "--duration", "5", "--streams", "4",
                "--rate", "15", "--save-trace", str(trace_path),
                "--output", str(output),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Cluster report" in printed and "Per-shard telemetry" in printed
        payload = json.loads(output.read_text())
        assert payload["num_shards"] == 4
        assert payload["completed"] > 0
        assert trace_path.exists()

        # Replaying the saved trace reproduces the exact same workload.
        code = main(
            [
                "cluster", "--shards", "4", "--no-calibrate",
                "--trace", str(trace_path), "--output", str(output),
            ]
        )
        assert code == 0
        replayed = json.loads(output.read_text())
        assert replayed["submitted"] == payload["submitted"]
        assert replayed["completed"] == payload["completed"]

    def test_bench_list_includes_cluster_benchmark(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        assert "cluster_scaling" in capsys.readouterr().out

    def test_bad_arguments_exit_cleanly(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["cluster", "--shards", "0", "--no-calibrate"])
        with pytest.raises(SystemExit):
            main(["cluster", "--scenario", "apocalypse"])


# -- simulated shard internals -------------------------------------------------
class TestSimulatedShard:
    def _shard(self, **serving_kwargs):
        from repro.cluster.simulation import SimulatedShard

        clock = {"now": 0.0}
        shard = SimulatedShard(
            shard_id=0,
            serving=ServingConfig(**{"num_workers": 1, "max_batch_size": 4, **serving_kwargs}),
            model=analytic_service_model(ADA),
            ladder=ADA.regressor_scales,
            clock=lambda: clock["now"],
        )
        return shard, clock

    def test_batches_respect_per_stream_ordering(self):
        shard, clock = self._shard()
        shard.set_scale_cap(32)  # one bucket: every frame batches together
        for stream in range(3):
            shard.open_stream(stream)
        for index in range(2):
            for stream in range(3):
                shard.admit(stream, index, now=0.0)
        started = shard.start_batches(now=0.0)
        assert len(started) == 1  # one worker
        _, batch = started[0]
        # Three distinct streams — a stream never batches with itself.
        assert sorted(frame.stream_id for frame in batch) == [0, 1, 2]
        assert shard.queue_depth == 3  # the second frames wait for task-done

    def test_later_frame_never_overtakes_a_scale_mismatched_earlier_one(self):
        """Only a stream's oldest queued frame is batch-eligible.

        Regression: stream 1's frame 0 (different scale bucket) is skipped —
        its frame 1, which happens to match the bucket, must NOT be batched
        in its place, or per-stream temporal ordering breaks.
        """
        shard, _ = self._shard(max_batch_size=4)
        shard.open_stream(0)
        shard.open_stream(1)
        from repro.cluster.simulation import _SimFrame

        shard._queue.extend(
            [
                _SimFrame(stream_id=0, frame_index=0, arrival_s=0.0, deadline_s=None, scale=96),
                _SimFrame(stream_id=1, frame_index=0, arrival_s=0.1, deadline_s=None, scale=128),
                _SimFrame(stream_id=1, frame_index=1, arrival_s=0.2, deadline_s=None, scale=96),
            ]
        )
        started = shard.start_batches(now=0.3)
        (_, batch) = started[0]
        assert [(f.stream_id, f.frame_index) for f in batch] == [(0, 0)]
        # Stream 1's head (frame 0) is still first in the surviving queue.
        assert [(f.stream_id, f.frame_index) for f in shard._queue] == [(1, 0), (1, 1)]

    def test_scale_cap_floor_is_ladder_minimum(self):
        shard, _ = self._shard()
        shard.open_stream(0)
        shard.set_scale_cap(1)  # absurd cap: clamps to ladder min, not below
        assert shard._effective_scale(128) == min(ADA.regressor_scales)

    def test_occupancy_signal(self):
        shard, _ = self._shard()
        shard.open_stream(0)
        shard.open_stream(1)
        assert shard.occupancy == 0.0
        shard.admit(0, 0, now=0.0)
        shard.admit(1, 0, now=0.0)
        shard.start_batches(now=0.0)
        assert shard.occupancy >= 1.0  # worker busy (+ possibly queued)

"""Tests for loss functions, optimisers, schedules and tensor functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Linear,
    Parameter,
    SGD,
    Adam,
    MultiStepLR,
    bilinear_resize,
    log_softmax,
    mse_loss,
    sigmoid,
    smooth_l1_loss,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.optim import build_optimizer


class TestSoftmaxFunctions:
    def test_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(4, 7)).astype(np.float32)
        np.testing.assert_allclose(softmax(x, axis=1).sum(axis=1), np.ones(4), rtol=1e-5)

    def test_softmax_handles_large_values(self):
        x = np.array([[1000.0, 1000.0]], dtype=np.float32)
        out = softmax(x)
        np.testing.assert_allclose(out, [[0.5, 0.5]], rtol=1e-5)

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float32)
        np.testing.assert_allclose(np.exp(log_softmax(x)), softmax(x), rtol=1e-5)

    def test_sigmoid_bounds_and_symmetry(self):
        x = np.array([-100.0, 0.0, 100.0], dtype=np.float32)
        out = sigmoid(x)
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-6)

    def test_sigmoid_matches_definition(self, rng):
        x = rng.normal(size=10).astype(np.float32)
        np.testing.assert_allclose(sigmoid(x), 1.0 / (1.0 + np.exp(-x)), rtol=1e-5)


class TestBilinearResize:
    def test_identity_when_same_size(self, rng):
        feature = rng.normal(size=(2, 4, 5)).astype(np.float32)
        np.testing.assert_array_equal(bilinear_resize(feature, 4, 5), feature)

    def test_constant_field_preserved(self):
        feature = np.full((1, 3, 6, 6), 2.5, dtype=np.float32)
        out = bilinear_resize(feature, 3, 9)
        np.testing.assert_allclose(out, 2.5)

    def test_upsample_shape(self, rng):
        feature = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        assert bilinear_resize(feature, 8, 8).shape == (1, 2, 8, 8)

    def test_3d_input_squeezes(self, rng):
        feature = rng.normal(size=(2, 4, 4)).astype(np.float32)
        assert bilinear_resize(feature, 2, 2).shape == (2, 2, 2)

    def test_invalid_size_raises(self, rng):
        with pytest.raises(ValueError):
            bilinear_resize(rng.normal(size=(1, 1, 2, 2)), 0, 2)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        loss, _, per_sample = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-3
        assert per_sample.shape == (2,)

    def test_uniform_prediction_loss_is_log_k(self):
        logits = np.zeros((3, 4), dtype=np.float32)
        loss, _, _ = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4), rel=1e-4)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 4)).astype(np.float32)
        targets = np.array([1, 0, 3])
        _, grad, _ = softmax_cross_entropy(logits, targets)
        eps = 1e-3
        for index in [(0, 1), (2, 3), (1, 2)]:
            shifted = logits.copy()
            shifted[index] += eps
            plus, _, _ = softmax_cross_entropy(shifted, targets)
            shifted[index] -= 2 * eps
            minus, _, _ = softmax_cross_entropy(shifted, targets)
            assert grad[index] == pytest.approx((plus - minus) / (2 * eps), rel=1e-2, abs=1e-3)

    def test_weights_mask_samples(self):
        logits = np.array([[5.0, 0.0], [0.0, 5.0]], dtype=np.float32)
        # Second sample is wrong but masked out.
        loss, grad, _ = softmax_cross_entropy(logits, np.array([0, 0]), weights=np.array([1.0, 0.0]))
        assert loss < 1e-2
        np.testing.assert_array_equal(grad[1], np.zeros(2))

    def test_empty_batch(self):
        loss, grad, per = softmax_cross_entropy(np.zeros((0, 3), np.float32), np.zeros(0, np.int64))
        assert loss == 0.0 and grad.shape == (0, 3) and per.shape == (0,)

    def test_sum_reduction(self):
        logits = np.zeros((2, 2), dtype=np.float32)
        loss_sum, _, _ = softmax_cross_entropy(logits, np.array([0, 1]), reduction="sum")
        loss_mean, _, _ = softmax_cross_entropy(logits, np.array([0, 1]), reduction="mean")
        assert loss_sum == pytest.approx(2 * loss_mean)

    def test_invalid_reduction_raises(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((1, 2), np.float32), np.array([0]), reduction="bogus")


class TestSmoothL1:
    def test_zero_for_identical_inputs(self, rng):
        pred = rng.normal(size=(4, 4)).astype(np.float32)
        loss, grad, per = smooth_l1_loss(pred, pred)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(pred))

    def test_quadratic_region(self):
        pred = np.array([[0.5]], dtype=np.float32)
        target = np.zeros((1, 1), dtype=np.float32)
        loss, _, _ = smooth_l1_loss(pred, target, beta=1.0)
        assert loss == pytest.approx(0.5 * 0.25)

    def test_linear_region(self):
        pred = np.array([[3.0]], dtype=np.float32)
        target = np.zeros((1, 1), dtype=np.float32)
        loss, _, _ = smooth_l1_loss(pred, target, beta=1.0)
        assert loss == pytest.approx(3.0 - 0.5)

    def test_gradient_bounded_by_one(self, rng):
        pred = rng.normal(scale=10.0, size=(5, 4)).astype(np.float32)
        target = np.zeros_like(pred)
        _, grad, _ = smooth_l1_loss(pred, target, reduction="sum")
        assert np.all(np.abs(grad) <= 1.0 + 1e-6)

    def test_weights_zero_out_background(self):
        pred = np.array([[1.0, 1.0, 1.0, 1.0], [2.0, 2.0, 2.0, 2.0]], dtype=np.float32)
        target = np.zeros_like(pred)
        weights = np.array([[1.0] * 4, [0.0] * 4], dtype=np.float32)
        _, grad, per = smooth_l1_loss(pred, target, weights=weights, reduction="none")
        assert per[1] == 0.0
        np.testing.assert_array_equal(grad[1], np.zeros(4))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            smooth_l1_loss(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_invalid_beta_raises(self):
        with pytest.raises(ValueError):
            smooth_l1_loss(np.zeros((1, 4)), np.zeros((1, 4)), beta=0.0)


class TestMSE:
    def test_value_and_gradient(self):
        pred = np.array([1.0, 2.0], dtype=np.float32)
        target = np.array([0.0, 0.0], dtype=np.float32)
        loss, grad, per = mse_loss(pred, target)
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [1.0, 2.0])

    def test_zero_loss_for_equal(self, rng):
        x = rng.normal(size=(3,)).astype(np.float32)
        loss, _, _ = mse_loss(x, x)
        assert loss == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=8), st.integers(0, 1000))
    def test_non_negative(self, values, seed):
        rng = np.random.default_rng(seed)
        pred = np.asarray(values, dtype=np.float32)
        target = rng.normal(size=pred.shape).astype(np.float32)
        loss, _, _ = mse_loss(pred, target)
        assert loss >= 0.0


class TestOptimisers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0], dtype=np.float32)
        param = Parameter(np.zeros(2, dtype=np.float32), name="w")
        return param, target

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], learning_rate=0.1, momentum=0.0)
        for _ in range(200):
            opt.zero_grad()
            param.accumulate(2 * (param.data - target))
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], learning_rate=0.1)
        for _ in range(300):
            opt.zero_grad()
            param.accumulate(2 * (param.data - target))
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_sgd_skips_frozen_parameters(self):
        param = Parameter(np.ones(2), requires_grad=False)
        opt = SGD([param], learning_rate=0.5)
        param.accumulate(np.ones(2))
        opt.step()
        np.testing.assert_array_equal(param.data, np.ones(2))

    def test_adam_skips_frozen_parameters(self):
        param = Parameter(np.ones(2), requires_grad=False)
        opt = Adam([param], learning_rate=0.5)
        param.accumulate(np.ones(2))
        opt.step()
        np.testing.assert_array_equal(param.data, np.ones(2))

    def test_gradient_clipping_limits_step(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], learning_rate=1.0, momentum=0.0, max_grad_norm=1.0)
        param.accumulate(np.array([100.0], dtype=np.float32))
        opt.step()
        assert abs(float(param.data[0])) <= 1.0 + 1e-6

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([param], learning_rate=0.1, momentum=0.0, weight_decay=0.5)
        opt.step()  # zero gradient, only decay
        assert float(param.data[0]) < 1.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)
        with pytest.raises(ValueError):
            Adam([], learning_rate=0.1)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], learning_rate=0.0)

    def test_build_optimizer_dispatch(self):
        params = [Parameter(np.zeros(1))]
        assert isinstance(build_optimizer("sgd", params, 0.1), SGD)
        assert isinstance(build_optimizer("adam", params, 0.1), Adam)
        with pytest.raises(ValueError):
            build_optimizer("rmsprop", params, 0.1)

    def test_grad_norm(self):
        param = Parameter(np.zeros(2))
        opt = SGD([param], learning_rate=0.1)
        param.accumulate(np.array([3.0, 4.0], dtype=np.float32))
        assert opt.grad_norm() == pytest.approx(5.0)


class TestMultiStepLR:
    def test_decays_at_milestones(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], learning_rate=1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)

    def test_current_lr_property(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], learning_rate=0.5)
        sched = MultiStepLR(opt, milestones=[1])
        sched.step()
        assert sched.current_lr == opt.learning_rate

    def test_invalid_gamma(self):
        opt = SGD([Parameter(np.zeros(1))], learning_rate=0.5)
        with pytest.raises(ValueError):
            MultiStepLR(opt, milestones=[1], gamma=0.0)

    def test_training_loop_with_linear_model(self, rng):
        """End-to-end: a Linear layer fits a linear mapping with Adam."""
        true_weight = np.array([[2.0, -1.0]], dtype=np.float32)
        layer = Linear(2, 1, rng=rng)
        opt = Adam(layer.parameters(), learning_rate=0.05)
        for _ in range(300):
            x = rng.normal(size=(16, 2)).astype(np.float32)
            y = x @ true_weight.T
            pred = layer(x)
            loss, grad, _ = mse_loss(pred, y)
            opt.zero_grad()
            layer.backward(grad)
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=0.1)

"""Tests for SyntheticVID / MiniYTBB datasets, transforms and loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DatasetConfig
from repro.data import (
    FrameLoader,
    MiniYTBB,
    SyntheticVID,
    image_to_chw,
    iterate_frames,
    normalize_image,
    resize_image,
    resize_with_boxes,
)
from repro.data.mini_ytbb import default_ytbb_config
from repro.data.transforms import PIXEL_MEAN, chw_to_image


@pytest.fixture(scope="module")
def small_dataset() -> SyntheticVID:
    config = DatasetConfig(
        num_classes=4,
        base_scale=64,
        num_train_snippets=3,
        num_val_snippets=2,
        frames_per_snippet=4,
        seed=11,
    )
    return SyntheticVID(config, split="train")


class TestSyntheticVID:
    def test_snippet_and_frame_counts(self, small_dataset):
        assert len(small_dataset) == 3
        assert small_dataset.num_frames == 12
        assert all(len(snippet) == 4 for snippet in small_dataset)

    def test_frame_geometry_matches_config(self, small_dataset):
        frame = small_dataset[0][0]
        assert frame.height == 64
        assert frame.width == int(round(64 * 1.33))
        assert frame.image.dtype == np.float32

    def test_boxes_within_frame(self, small_dataset):
        for frame in iterate_frames(small_dataset):
            if frame.num_objects == 0:
                continue
            assert np.all(frame.boxes[:, 0] >= 0) and np.all(frame.boxes[:, 1] >= 0)
            assert np.all(frame.boxes[:, 2] <= frame.width)
            assert np.all(frame.boxes[:, 3] <= frame.height)
            assert np.all(frame.boxes[:, 2] > frame.boxes[:, 0])
            assert np.all(frame.boxes[:, 3] > frame.boxes[:, 1])

    def test_labels_within_class_range(self, small_dataset):
        for frame in iterate_frames(small_dataset):
            if frame.num_objects:
                assert frame.labels.min() >= 0
                assert frame.labels.max() < small_dataset.num_classes

    def test_rendering_is_deterministic(self):
        config = DatasetConfig(num_train_snippets=2, frames_per_snippet=3, seed=3)
        a = SyntheticVID(config, "train")[1][2]
        b = SyntheticVID(config, "train")[1][2]
        np.testing.assert_array_equal(a.image, b.image)
        np.testing.assert_array_equal(a.boxes, b.boxes)

    def test_out_of_order_access_matches_sequential(self):
        config = DatasetConfig(num_train_snippets=1, frames_per_snippet=4, seed=5)
        sequential = SyntheticVID(config, "train")[0]
        frames_in_order = [sequential[i].image for i in range(4)]
        random_access = SyntheticVID(config, "train")[0]
        late_first = random_access[3].image
        np.testing.assert_array_equal(late_first, frames_in_order[3])

    def test_train_and_val_splits_differ(self):
        config = DatasetConfig(num_train_snippets=2, num_val_snippets=2, frames_per_snippet=2, seed=1)
        train_frame = SyntheticVID(config, "train")[0][0]
        val_frame = SyntheticVID(config, "val")[0][0]
        assert not np.allclose(train_frame.image, val_frame.image)

    def test_different_seeds_give_different_data(self):
        a = SyntheticVID(DatasetConfig(num_train_snippets=1, seed=1), "train")[0][0]
        b = SyntheticVID(DatasetConfig(num_train_snippets=1, seed=2), "train")[0][0]
        assert not np.allclose(a.image, b.image)

    def test_temporal_consistency_of_object_identity(self, small_dataset):
        """Consecutive frames keep the same object classes (temporal consistency)."""
        snippet = small_dataset[0]
        classes_per_frame = [sorted(frame.labels.tolist()) for frame in snippet]
        assert classes_per_frame[0] == classes_per_frame[1]

    def test_object_motion_is_smooth(self, small_dataset):
        """Box centres move by a bounded amount between consecutive frames."""
        snippet = small_dataset[0]
        first, second = snippet[0], snippet[1]
        if first.num_objects and second.num_objects:
            shift = np.abs(first.boxes[0] - second.boxes[0]).max()
            assert shift < 15.0

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            SyntheticVID(DatasetConfig(), split="test")

    def test_too_many_classes_rejected(self):
        with pytest.raises(ValueError):
            SyntheticVID(DatasetConfig(num_classes=99))

    def test_scale_archetypes_cover_large_and_small_objects(self):
        """The dataset must contain both very large and small objects so that
        different frames have different optimal scales (the premise of the paper)."""
        config = DatasetConfig(num_train_snippets=9, frames_per_snippet=2, seed=0)
        dataset = SyntheticVID(config, "train")
        fractions = []
        for frame in iterate_frames(dataset):
            if frame.num_objects == 0:
                continue
            sides = np.minimum(
                frame.boxes[:, 2] - frame.boxes[:, 0], frame.boxes[:, 3] - frame.boxes[:, 1]
            )
            fractions.extend((sides / min(frame.height, frame.width)).tolist())
        assert max(fractions) > 0.6
        assert min(fractions) < 0.25


class TestMiniYTBB:
    def test_default_config_differs_from_vid(self):
        config = default_ytbb_config()
        assert config.num_classes != DatasetConfig().num_classes
        assert config.name == "mini-ytbb"

    def test_class_names_come_from_ytbb_palette(self):
        dataset = MiniYTBB(split="val")
        assert "person" in dataset.class_names

    def test_same_api_as_vid(self):
        dataset = MiniYTBB(default_ytbb_config(seed=1).with_(num_train_snippets=2, frames_per_snippet=2))
        frame = dataset[0][0]
        assert frame.image.ndim == 3


class TestTransforms:
    def test_resize_image_shortest_side(self, small_dataset):
        frame = small_dataset[0][0]
        resized = resize_image(frame.image, 32)
        assert min(resized.image.shape[:2]) == 32
        assert resized.scale_factor == pytest.approx(0.5, rel=0.05)

    def test_resize_image_long_side_cap(self, small_dataset):
        frame = small_dataset[0][0]
        resized = resize_image(frame.image, 64, max_long_side=60)
        assert max(resized.image.shape[:2]) <= 61
        assert resized.scale_factor < 1.0

    def test_resize_identity(self, small_dataset):
        frame = small_dataset[0][0]
        resized = resize_image(frame.image, min(frame.image.shape[:2]))
        assert resized.scale_factor == pytest.approx(1.0)
        np.testing.assert_array_equal(resized.image, frame.image)

    def test_resize_with_boxes_scales_consistently(self, small_dataset):
        frame = next(f for f in iterate_frames(small_dataset) if f.num_objects > 0)
        resized, boxes = resize_with_boxes(frame.image, frame.boxes, 32)
        expected = frame.boxes * resized.scale_factor
        expected[:, 0::2] = np.clip(expected[:, 0::2], 0, resized.image.shape[1])
        expected[:, 1::2] = np.clip(expected[:, 1::2], 0, resized.image.shape[0])
        np.testing.assert_allclose(boxes, expected, rtol=1e-4)

    def test_resize_rejects_bad_input(self):
        with pytest.raises(ValueError):
            resize_image(np.zeros((4, 4)), 2)
        with pytest.raises(ValueError):
            resize_image(np.zeros((4, 4, 3)), 0)

    def test_normalize_subtracts_mean(self):
        image = np.tile(PIXEL_MEAN[None, None, :], (4, 5, 1))
        np.testing.assert_allclose(normalize_image(image), np.zeros((4, 5, 3)), atol=1e-6)

    def test_chw_roundtrip(self, small_dataset):
        frame = small_dataset[0][0]
        tensor = image_to_chw(frame.image)
        assert tensor.shape == (1, 3, frame.height, frame.width)
        np.testing.assert_allclose(chw_to_image(tensor), frame.image)

    def test_chw_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            image_to_chw(np.zeros((3, 4, 4)))
        with pytest.raises(ValueError):
            chw_to_image(np.zeros((2, 3, 4, 4)))


class TestFrameLoader:
    def test_visits_every_frame_once_per_epoch(self, small_dataset, rng):
        loader = FrameLoader(small_dataset, rng)
        seen = {(f.snippet_id, f.frame_index) for f in loader.take(len(loader))}
        assert len(seen) == small_dataset.num_frames

    def test_infinite_stream_reshuffles(self, small_dataset, rng):
        loader = FrameLoader(small_dataset, rng)
        frames = loader.take(2 * len(loader))
        assert len(frames) == 2 * small_dataset.num_frames

    def test_negative_take_rejected(self, small_dataset, rng):
        loader = FrameLoader(small_dataset, rng)
        with pytest.raises(ValueError):
            loader.take(-1)

    def test_iterate_frames_order(self, small_dataset):
        frames = list(iterate_frames(small_dataset))
        assert frames[0].snippet_id == 0 and frames[0].frame_index == 0
        assert frames[-1].snippet_id == len(small_dataset) - 1

"""Tests for the multi-stream serving subsystem (``repro.serving``)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.acceleration.combined import AdaScaleDFFDetector
from repro.acceleration.seqnms import seq_nms
from repro.config import ServingConfig
from repro.evaluation.runtime import RuntimeStats
from repro.serving import (
    ArrivalEvent,
    FrameRequest,
    FrameResult,
    FrameScheduler,
    InferenceServer,
    LoadGenerator,
    RequestStatus,
    ServerMetrics,
)


def _request(stream_id: int, frame_index: int, scale: int, enqueue_time: float = 0.0):
    return FrameRequest(
        stream_id=stream_id,
        frame_index=frame_index,
        image=np.zeros((4, 4, 3), dtype=np.float32),
        enqueue_time=enqueue_time,
        scale=scale,
    )


class TestRuntimeStatsPercentiles:
    def test_percentiles(self):
        stats = RuntimeStats(name="x")
        for value in range(1, 101):  # 1ms .. 100ms
            stats.add(value / 1000.0)
        assert stats.p50_ms == pytest.approx(50.5, abs=0.6)
        assert stats.p95_ms == pytest.approx(95.05, abs=0.6)
        assert stats.p99_ms == pytest.approx(99.01, abs=0.6)
        assert stats.percentile(0.0) == pytest.approx(1.0)
        assert stats.percentile(100.0) == pytest.approx(100.0)

    def test_empty_and_invalid(self):
        stats = RuntimeStats()
        assert np.isnan(stats.p95_ms)
        with pytest.raises(ValueError):
            stats.percentile(101.0)

    def test_summary_keys(self):
        stats = RuntimeStats(name="y")
        stats.add(0.01)
        summary = stats.summary()
        assert set(summary) == {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "fps"}

    def test_runtime_summary_table(self):
        from repro.evaluation import runtime_summary_table

        stats = RuntimeStats(name="svc")
        stats.add(0.002)
        table = runtime_summary_table([stats], title="latency")
        assert "p95 (ms)" in table
        assert "svc" in table


class TestFrameScheduler:
    def test_batches_group_by_scale(self):
        scheduler = FrameScheduler(queue_capacity=16, max_batch_size=4, batch_wait_s=0.0)
        for stream, scale in enumerate([64, 48, 64, 64, 48]):
            scheduler.submit(_request(stream, 0, scale, enqueue_time=float(stream)))
        batch = scheduler.next_batch(timeout=0.1)
        # Oldest head has scale 64; all ready same-scale heads batch together.
        assert [r.stream_id for r in batch] == [0, 2, 3]
        assert all(r.resolve_scale() == 64 for r in batch)

    def test_max_batch_size(self):
        scheduler = FrameScheduler(queue_capacity=16, max_batch_size=2, batch_wait_s=0.0)
        for stream in range(4):
            scheduler.submit(_request(stream, 0, 64, enqueue_time=float(stream)))
        assert len(scheduler.next_batch(timeout=0.1)) == 2
        assert len(scheduler.next_batch(timeout=0.1)) == 2

    def test_per_stream_sequencing(self):
        scheduler = FrameScheduler(queue_capacity=16, max_batch_size=4, batch_wait_s=0.0)
        scheduler.submit(_request(0, 0, 64, enqueue_time=0.0))
        scheduler.submit(_request(0, 1, 64, enqueue_time=1.0))
        batch = scheduler.next_batch(timeout=0.1)
        assert [(r.stream_id, r.frame_index) for r in batch] == [(0, 0)]
        # Frame 1 is not ready until frame 0 is marked done.
        assert scheduler.next_batch(timeout=0.02) == []
        scheduler.task_done(0)
        batch = scheduler.next_batch(timeout=0.1)
        assert [(r.stream_id, r.frame_index) for r in batch] == [(0, 1)]

    def test_reject_policy(self):
        scheduler = FrameScheduler(queue_capacity=1, backpressure="reject", batch_wait_s=0.0)
        assert scheduler.submit(_request(0, 0, 64)) is True
        rejected = _request(1, 0, 64)
        assert scheduler.submit(rejected) is False
        assert rejected.result(timeout=1.0).status is RequestStatus.REJECTED

    def test_drop_oldest_policy(self):
        scheduler = FrameScheduler(queue_capacity=2, backpressure="drop-oldest", batch_wait_s=0.0)
        oldest = _request(0, 0, 64, enqueue_time=0.0)
        scheduler.submit(oldest)
        scheduler.submit(_request(1, 0, 64, enqueue_time=1.0))
        newest = _request(2, 0, 64, enqueue_time=2.0)
        assert scheduler.submit(newest) is True
        assert oldest.result(timeout=1.0).status is RequestStatus.DROPPED
        assert scheduler.depth == 2

    def test_block_policy_unblocks_on_dispatch(self):
        scheduler = FrameScheduler(queue_capacity=1, backpressure="block", batch_wait_s=0.0)
        scheduler.submit(_request(0, 0, 64))
        admitted = threading.Event()

        def blocked_submit():
            scheduler.submit(_request(1, 0, 64, enqueue_time=1.0))
            admitted.set()

        thread = threading.Thread(target=blocked_submit, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()  # still blocked: queue full
        assert len(scheduler.next_batch(timeout=0.2)) == 1  # frees a slot
        assert admitted.wait(timeout=2.0)
        thread.join(timeout=2.0)

    def test_deadline_expiry(self):
        now = [100.0]
        scheduler = FrameScheduler(
            queue_capacity=8, deadline_s=0.5, batch_wait_s=0.0, clock=lambda: now[0]
        )
        stale = _request(0, 0, 64, enqueue_time=100.0)
        scheduler.submit(stale)
        now[0] = 101.0  # deadline (100.5) has passed
        fresh = _request(1, 0, 64, enqueue_time=101.0)
        scheduler.submit(fresh)
        batch = scheduler.next_batch(timeout=0.1)
        assert [r.stream_id for r in batch] == [1]
        assert stale.result(timeout=1.0).status is RequestStatus.EXPIRED

    def test_deadline_ordering_prefers_urgent_bucket(self):
        scheduler = FrameScheduler(queue_capacity=8, batch_wait_s=0.0)
        late = _request(0, 0, 48, enqueue_time=5.0)
        urgent = _request(1, 0, 64, enqueue_time=9.0)
        urgent.deadline = 10.0
        late.deadline = 20.0
        scheduler.submit(late)
        scheduler.submit(urgent)
        batch = scheduler.next_batch(timeout=0.1)
        assert [r.stream_id for r in batch] == [1]

    def test_close_cancels_pending(self):
        scheduler = FrameScheduler(queue_capacity=8, batch_wait_s=0.0)
        request = _request(0, 0, 64)
        scheduler.submit(request)
        scheduler.close(cancel_pending=True)
        assert request.result(timeout=1.0).status is RequestStatus.CANCELLED
        assert scheduler.next_batch(timeout=0.05) is None  # closed + drained


class TestServerMetrics:
    def test_snapshot_counts_and_percentiles(self):
        metrics = ServerMetrics()
        for _ in range(10):
            metrics.on_submitted()
        for i in range(8):
            metrics.on_completed(stream_id=i % 2, queue_wait_s=0.001, service_s=0.004, latency_s=0.005)
        metrics.on_shed("dropped")
        metrics.on_shed("rejected")
        metrics.observe_batch(3)
        metrics.observe_queue_depth(5)
        snap = metrics.snapshot()
        assert snap.submitted == 10
        assert snap.completed == 8
        assert snap.dropped == 1 and snap.rejected == 1
        assert snap.shed == 2
        assert snap.latency.p95_ms == pytest.approx(5.0)
        assert snap.mean_batch_size == pytest.approx(3.0)
        assert snap.max_queue_depth == 5
        assert len(snap.streams) == 2

    def test_format_contains_tail_latency(self):
        metrics = ServerMetrics()
        metrics.on_submitted()
        metrics.on_completed(stream_id=0, queue_wait_s=0.001, service_s=0.004, latency_s=0.005)
        text = metrics.snapshot().format()
        assert "p95 (ms)" in text and "p99 (ms)" in text
        assert "throughput (frames/s)" in text
        assert "Per-stream throughput" in text

    def test_unknown_shed_kind(self):
        with pytest.raises(ValueError):
            ServerMetrics().on_shed("vanished")

    def test_zero_traffic_snapshot_is_clean(self):
        """A zero-traffic shard must report 0/None cleanly, never raise or NaN.

        Cluster shards can legitimately see no traffic (a drained replica, a
        router that never placed a stream there); their telemetry must still
        format and serialize.
        """
        import json

        snap = ServerMetrics().snapshot()
        assert snap.submitted == 0 and snap.completed == 0 and snap.shed == 0
        assert snap.wall_s == 0.0
        assert snap.throughput_fps == 0.0
        assert snap.mean_batch_size == 0.0
        assert snap.mean_queue_depth == 0.0
        assert snap.max_queue_depth == 0 and snap.max_batch_size == 0
        assert snap.latency.count == 0
        text = snap.format()  # must not raise
        assert "throughput" in text
        # Rate/occupancy aggregates are strict-JSON-safe (no NaN tokens).
        json.dumps(
            {
                "wall_s": snap.wall_s,
                "throughput_fps": snap.throughput_fps,
                "mean_batch_size": snap.mean_batch_size,
                "mean_queue_depth": snap.mean_queue_depth,
            },
            allow_nan=False,
        )

    def test_zero_traffic_cluster_shard_report_is_clean(self):
        """ShardReport built from an empty snapshot carries zeros, not NaN."""
        import json

        from repro.cluster.report import ShardReport

        report = ShardReport.from_snapshot(3, ServerMetrics().snapshot(), None)
        assert report.completed == 0 and report.shed == 0
        assert report.p50_ms == 0.0 and report.p95_ms == 0.0 and report.p99_ms == 0.0
        json.dumps(report.__dict__, allow_nan=False)

    def test_recent_latency_window(self):
        metrics = ServerMetrics()
        assert metrics.recent_latency(8).count == 0  # empty = no signal, no raise
        for i in range(1, 101):
            metrics.on_completed(
                stream_id=0, queue_wait_s=0.0, service_s=0.0, latency_s=i / 1000.0
            )
        recent = metrics.recent_latency(10)
        assert recent.count == 10
        # Only the last 10 samples (91..100ms) are in the window.
        assert recent.p50_ms == pytest.approx(95.5, abs=0.6)
        assert metrics.recent_latency(1000).count == 100
        with pytest.raises(ValueError):
            metrics.recent_latency(0)

    def test_recent_latency_empty_window_formats(self):
        """The empty rolling view is a usable RuntimeStats, not a footgun."""
        recent = ServerMetrics().recent_latency(32)
        assert recent.count == 0
        # Percentiles/rates of an empty window are NaN by contract — callers
        # gate on count — but asking for them must not raise.
        float(recent.p95_ms)
        float(recent.fps)

    def test_recent_latency_single_sample(self):
        """One completion: every percentile collapses onto that sample."""
        metrics = ServerMetrics()
        metrics.on_completed(stream_id=0, queue_wait_s=0.0, service_s=0.0, latency_s=0.042)
        recent = metrics.recent_latency(8)
        assert recent.count == 1
        assert recent.p50_ms == pytest.approx(42.0)
        assert recent.p95_ms == pytest.approx(42.0)
        assert recent.p99_ms == pytest.approx(42.0)

    def test_recent_latency_eviction_under_churn(self):
        """The window always reflects the *newest* samples as load shifts."""
        metrics = ServerMetrics()
        for _ in range(50):  # a slow era...
            metrics.on_completed(stream_id=0, queue_wait_s=0.0, service_s=0.0, latency_s=0.5)
        for _ in range(10):  # ...then a fast era
            metrics.on_completed(stream_id=0, queue_wait_s=0.0, service_s=0.0, latency_s=0.001)
        recent = metrics.recent_latency(10)
        assert recent.count == 10
        assert recent.p95_ms == pytest.approx(1.0)  # no slow-era samples remain
        # A window spanning both eras still sees the old tail.
        assert metrics.recent_latency(20).p95_ms == pytest.approx(500.0)

    def test_recent_latency_snapshot_while_recording(self):
        """Concurrent completions and rolling reads never tear or raise."""
        import threading

        metrics = ServerMetrics()
        stop = threading.Event()
        errors: list[Exception] = []

        def record():
            i = 0
            while not stop.is_set():
                metrics.on_completed(
                    stream_id=i % 4, queue_wait_s=0.0, service_s=0.0, latency_s=0.001
                )
                i += 1

        def read():
            while not stop.is_set():
                try:
                    recent = metrics.recent_latency(16)
                    assert 0 <= recent.count <= 16
                    metrics.snapshot()
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=record) for _ in range(2)] + [
            threading.Thread(target=read) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        import time as _time

        _time.sleep(0.2)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors
        assert metrics.completed == metrics.snapshot().latency.count


class TestServingConfig:
    def test_validation(self):
        ServingConfig().validate()
        with pytest.raises(ValueError):
            ServingConfig(num_workers=0).validate()
        with pytest.raises(ValueError):
            ServingConfig(backpressure="explode").validate()
        with pytest.raises(ValueError):
            ServingConfig(deadline_ms=-1.0).validate()
        with pytest.raises(ValueError):
            ServingConfig(key_frame_interval=0).validate()

    def test_experiment_config_validates_serving(self, micro_config):
        bad = micro_config.with_(serving=ServingConfig(max_batch_size=0))
        with pytest.raises(ValueError):
            bad.validate()
        bad_scale = micro_config.with_(serving=ServingConfig(initial_scale=7))
        with pytest.raises(ValueError):
            bad_scale.validate()


class TestLoadGenerator:
    def test_schedule_deterministic_under_seed(self):
        kwargs = dict(num_streams=3, frames_per_stream=5, pattern="poisson", rate_fps=20.0)
        first = LoadGenerator(seed=7, **kwargs).schedule()
        second = LoadGenerator(seed=7, **kwargs).schedule()
        assert first == second
        different = LoadGenerator(seed=8, **kwargs).schedule()
        assert first != different

    def test_schedule_covers_every_frame(self):
        for pattern in ("poisson", "bursty", "uniform"):
            events = LoadGenerator(
                num_streams=2, frames_per_stream=4, pattern=pattern, rate_fps=10.0, seed=1
            ).schedule()
            assert len(events) == 8
            seen = {(e.stream_id, e.frame_index) for e in events}
            assert seen == {(s, f) for s in range(2) for f in range(4)}
            times = [e.time_s for e in events]
            assert times == sorted(times)

    def test_per_stream_arrivals_are_ordered(self):
        events = LoadGenerator(
            num_streams=2, frames_per_stream=6, pattern="bursty", rate_fps=30.0, seed=3
        ).schedule()
        for stream in range(2):
            indices = [e.frame_index for e in events if e.stream_id == stream]
            assert indices == sorted(indices)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            LoadGenerator(num_streams=0, frames_per_stream=1)
        with pytest.raises(ValueError):
            LoadGenerator(num_streams=1, frames_per_stream=1, pattern="tsunami")
        with pytest.raises(ValueError):
            LoadGenerator(num_streams=1, frames_per_stream=1, rate_fps=0.0)

    def test_event_is_frozen(self):
        event = ArrivalEvent(time_s=0.0, stream_id=0, frame_index=0)
        with pytest.raises(AttributeError):
            event.time_s = 1.0  # type: ignore[misc]


class TestBackpressureSaturation:
    """Queue-bound invariants and shed accounting under sustained saturation.

    Each policy is driven well past capacity through a scheduler whose
    consumer is deliberately slow/manual, so the queue sits at its bound for
    the whole run; the invariants are checked *throughout*, not just at the
    end, and the shed counts must reconcile exactly with ServerMetrics.
    """

    CAPACITY = 4
    SUBMISSIONS = 60

    def _scheduler(self, policy: str, metrics: ServerMetrics) -> FrameScheduler:
        return FrameScheduler(
            queue_capacity=self.CAPACITY,
            backpressure=policy,
            max_batch_size=2,
            batch_wait_s=0.0,
            on_shed=lambda request, status: metrics.on_shed(status.value),
            on_depth=metrics.observe_queue_depth,
            on_batch=metrics.observe_batch,
        )

    def _drain_all(self, scheduler: FrameScheduler, metrics: ServerMetrics) -> int:
        """Dispatch-and-complete until the queue is empty; returns completions."""
        completed = 0
        while True:
            batch = scheduler.next_batch(timeout=0.01)
            if not batch:
                return completed
            assert len(batch) <= 2
            for request in batch:
                metrics.on_completed(
                    stream_id=request.stream_id,
                    queue_wait_s=0.0,
                    service_s=0.001,
                    latency_s=0.001,
                )
                # What the server's completion callback does for real workers.
                request.resolve(
                    FrameResult(
                        stream_id=request.stream_id,
                        frame_index=request.frame_index,
                        status=RequestStatus.COMPLETED,
                    )
                )
                completed += 1
                scheduler.task_done(request.stream_id)

    def test_reject_preserves_queue_bound_and_reconciles(self):
        metrics = ServerMetrics()
        scheduler = self._scheduler("reject", metrics)
        admitted = 0
        for i in range(self.SUBMISSIONS):
            metrics.on_submitted()
            if scheduler.submit(_request(i, 0, 64, enqueue_time=float(i))):
                admitted += 1
            assert scheduler.depth <= self.CAPACITY  # invariant under saturation
        assert admitted == self.CAPACITY  # no consumer ran: exactly one queue-full
        completed = self._drain_all(scheduler, metrics)
        snap = metrics.snapshot()
        assert completed == admitted
        assert snap.rejected == self.SUBMISSIONS - admitted
        assert snap.completed + snap.rejected == snap.submitted == self.SUBMISSIONS
        assert snap.max_queue_depth <= self.CAPACITY

    def test_reject_sustained_with_slow_consumer(self):
        """Interleaved submit/drain cycles: totals still reconcile exactly."""
        metrics = ServerMetrics()
        scheduler = self._scheduler("reject", metrics)
        completed = 0
        stream = 0
        for _ in range(6):  # sustained: repeat saturation after every drain
            for _ in range(10):
                metrics.on_submitted()
                scheduler.submit(_request(stream, 0, 64, enqueue_time=float(stream)))
                stream += 1
                assert scheduler.depth <= self.CAPACITY
            completed += self._drain_all(scheduler, metrics)
        snap = metrics.snapshot()
        assert snap.submitted == 60
        assert snap.completed == completed
        assert snap.completed + snap.rejected == snap.submitted
        assert snap.completed == 6 * self.CAPACITY

    def test_drop_oldest_preserves_queue_bound_and_reconciles(self):
        metrics = ServerMetrics()
        scheduler = self._scheduler("drop-oldest", metrics)
        requests = []
        for i in range(self.SUBMISSIONS):
            metrics.on_submitted()
            request = _request(i, 0, 64, enqueue_time=float(i))
            assert scheduler.submit(request) is True  # drop-oldest always admits
            requests.append(request)
            assert scheduler.depth <= self.CAPACITY
        completed = self._drain_all(scheduler, metrics)
        snap = metrics.snapshot()
        assert completed == self.CAPACITY  # everything older was shed
        assert snap.dropped == self.SUBMISSIONS - self.CAPACITY
        assert snap.completed + snap.dropped == snap.submitted == self.SUBMISSIONS
        # The survivors are exactly the newest CAPACITY submissions, and every
        # victim's future resolved as DROPPED (no submitter ever hangs).
        for request in requests[: -self.CAPACITY]:
            assert request.result(timeout=1.0).status is RequestStatus.DROPPED
        for request in requests[-self.CAPACITY:]:
            assert request.result(timeout=1.0).status is RequestStatus.COMPLETED

    def test_block_is_lossless_under_sustained_saturation(self):
        metrics = ServerMetrics()
        scheduler = self._scheduler("block", metrics)
        depth_violations = []
        served = []

        def producer():
            for i in range(self.SUBMISSIONS):
                metrics.on_submitted()
                scheduler.submit(_request(i % 8, i // 8, 64, enqueue_time=float(i)))
                if scheduler.depth > self.CAPACITY:
                    depth_violations.append(scheduler.depth)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        # Slow consumer: the producer saturates the queue and must block.
        while len(served) < self.SUBMISSIONS:
            batch = scheduler.next_batch(timeout=0.5)
            if not batch:
                if not thread.is_alive() and scheduler.depth == 0:
                    break
                continue
            for request in batch:
                time.sleep(0.001)
                metrics.on_completed(
                    stream_id=request.stream_id,
                    queue_wait_s=0.0,
                    service_s=0.001,
                    latency_s=0.002,
                )
                served.append(request)
                scheduler.task_done(request.stream_id)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        snap = metrics.snapshot()
        assert not depth_violations  # the bound held the whole time
        assert snap.completed == len(served) == self.SUBMISSIONS
        assert snap.shed == 0  # block is lossless
        assert snap.max_queue_depth <= self.CAPACITY

    def test_saturated_server_totals_reconcile(self, micro_bundle):
        """End to end through InferenceServer: counters reconcile per policy."""
        frames = list(micro_bundle.val_dataset)[0].frames()
        for policy in ("drop-oldest", "reject"):
            config = ServingConfig(
                num_workers=1, max_batch_size=1, queue_capacity=1, backpressure=policy
            )
            with InferenceServer(micro_bundle, serving=config) as server:
                requests = []
                for index, frame in enumerate(frames * 4):  # sustained oversubmit
                    requests.append(server.submit(0, frame.image, frame_index=index))
                assert server.drain(timeout=120.0)
            snap = server.telemetry()
            assert snap.submitted == len(requests)
            assert snap.completed + snap.shed == snap.submitted
            statuses = [r.result(timeout=1.0).status for r in requests]
            expected = (
                RequestStatus.DROPPED if policy == "drop-oldest" else RequestStatus.REJECTED
            )
            shed_count = sum(1 for status in statuses if status is expected)
            shed_field = snap.dropped if policy == "drop-oldest" else snap.rejected
            assert shed_field == shed_count
            assert snap.completed == sum(
                1 for status in statuses if status is RequestStatus.COMPLETED
            )


@pytest.fixture(scope="module")
def serving_config() -> ServingConfig:
    return ServingConfig(num_workers=2, max_batch_size=2, queue_capacity=8)


class TestInferenceServerIntegration:
    def test_multi_stream_matches_sequential_inference(self, micro_bundle, serving_config):
        """Served streams are bit-identical to sequential Algorithm-1 inference."""
        snippets = list(micro_bundle.val_dataset)[:2]
        references = [micro_bundle.adascale.process_video(s.frames()) for s in snippets]

        with InferenceServer(micro_bundle, serving=serving_config) as server:
            requests = []
            # Interleave submissions round-robin to force cross-stream batching.
            max_len = max(len(s) for s in snippets)
            for frame_index in range(max_len):
                for stream_id, snippet in enumerate(snippets):
                    if frame_index < len(snippet):
                        requests.append(
                            server.submit(stream_id, snippet[frame_index].image, frame_index)
                        )
            assert server.drain(timeout=120.0)
            results = server.finalize()

        for stream_id, reference in enumerate(references):
            served = results[stream_id]
            assert served.completed == len(reference)
            assert served.shed == 0
            assert served.scales_used == reference.scales_used
            for record, ref_output in zip(served.records, reference.outputs):
                assert np.array_equal(record.boxes, ref_output.detection.boxes)
                assert np.array_equal(record.scores, ref_output.detection.scores)
                assert np.array_equal(record.class_ids, ref_output.detection.class_ids)

        snap = server.telemetry()
        assert snap.completed == sum(len(s) for s in snippets)
        assert snap.shed == 0
        assert np.isfinite(snap.latency.p95_ms)
        # every request future resolved successfully
        assert all(r.result(timeout=1.0).ok for r in requests)

    def test_seqnms_serving_matches_offline_rescoring(self, micro_bundle, serving_config):
        snippet = list(micro_bundle.val_dataset)[0]
        config = serving_config.with_(use_seqnms=True, num_workers=1)
        with InferenceServer(micro_bundle, serving=config) as server:
            for frame in snippet.frames():
                server.submit(0, frame.image)
            assert server.drain(timeout=120.0)
            served = server.finalize_stream(0)

        # The same per-frame detections rescored offline must agree exactly.
        reference = micro_bundle.adascale.process_video(snippet.frames())
        raw_records = server.session(0).seqnms_stream.records
        num_classes = micro_bundle.config.detector.num_classes
        expected = seq_nms(raw_records, num_classes)
        for served_record, expected_record in zip(served.records, expected):
            assert np.array_equal(served_record.scores, expected_record.scores)
        for raw, ref_output in zip(raw_records, reference.outputs):
            assert np.array_equal(raw.boxes, ref_output.detection.boxes)

    def test_dff_serving_matches_offline_combination(self, micro_bundle, serving_config):
        """Served DFF streams match the offline AdaScale+DFF detector."""
        snippet = list(micro_bundle.val_dataset)[0]
        frames = snippet.frames()
        offline = AdaScaleDFFDetector(
            micro_bundle.ms_detector,
            micro_bundle.regressor,
            key_frame_interval=2,
            config=micro_bundle.config.adascale,
        ).process_video(frames)

        config = serving_config.with_(key_frame_interval=2, num_workers=2)
        with InferenceServer(micro_bundle, serving=config) as server:
            for frame in frames:
                server.submit(0, frame.image)
            assert server.drain(timeout=120.0)
            served = server.finalize_stream(0)

        assert served.scales_used == offline.scales_used
        for record, detection in zip(served.records, offline.detections):
            assert np.array_equal(record.boxes, detection.boxes)
            assert np.array_equal(record.scores, detection.scores)

    def test_reject_policy_sheds_but_serves_rest(self, micro_bundle):
        config = ServingConfig(
            num_workers=1, max_batch_size=1, queue_capacity=1, backpressure="reject"
        )
        snippet = list(micro_bundle.val_dataset)[0]
        frames = snippet.frames()
        with InferenceServer(micro_bundle, serving=config) as server:
            requests = [server.submit(0, frame.image) for frame in frames]
            assert server.drain(timeout=120.0)
        statuses = [r.result(timeout=1.0).status for r in requests]
        assert statuses.count(RequestStatus.COMPLETED) >= 1
        snap = server.telemetry()
        assert snap.completed + snap.rejected == len(frames)
        # Rejected frames must not advance the stream's frame bookkeeping.
        assert server.finalize_stream(0).completed == snap.completed

    def test_cancelled_future_does_not_hang_drain(self, micro_bundle, serving_config):
        """Externally cancelling a request future must not kill a worker."""
        snippet = list(micro_bundle.val_dataset)[0]
        frames = snippet.frames()
        with InferenceServer(micro_bundle, serving=serving_config) as server:
            requests = [server.submit(0, frame.image) for frame in frames]
            requests[-1].future.cancel()  # may race with completion; both fine
            assert server.drain(timeout=120.0)
        snap = server.telemetry()
        assert snap.completed + snap.shed + snap.failed == len(frames)

    def test_load_generator_end_to_end(self, micro_bundle, serving_config):
        snippets = list(micro_bundle.val_dataset)[:2]
        streams = [s.frames() for s in snippets]
        generator = LoadGenerator(
            num_streams=2,
            frames_per_stream=min(len(s) for s in streams),
            pattern="bursty",
            rate_fps=100.0,
            seed=5,
        )
        with InferenceServer(micro_bundle, serving=serving_config) as server:
            requests = generator.run(server, streams, time_scale=0.0)
            assert server.drain(timeout=120.0)
        assert all(r.result(timeout=1.0).ok for r in requests)
        snap = server.telemetry()
        assert snap.completed == len(requests)
        assert snap.mean_batch_size >= 1.0

"""Batch-equivalence guarantees of the batch-first inference stack.

The refactor's contract: executing frames inside a stacked micro-batch is
**bit-identical** to executing them one at a time.  These tests pin that down
at every layer — nn kernels, detector, scale regressor, serving — plus the
thread-safety property that makes worker replicas unnecessary.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.nn import Conv2d, Linear, MaxPool2d, ReLU, Sequential, inference_mode, is_inference
from repro.serving import InferenceServer


class TestInferenceMode:
    def test_flag_scoping_and_reentrancy(self):
        assert not is_inference()
        with inference_mode():
            assert is_inference()
            with inference_mode():
                assert is_inference()
            assert is_inference()
        assert not is_inference()

    def test_no_activation_caching(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        relu = ReLU()
        x = rng.random((1, 3, 12, 12), dtype=np.float32)
        with inference_mode():
            relu(conv(x))
        assert conv._cache is None
        assert relu._mask is None
        # Outside the block, training caching resumes.
        relu(conv(x))
        assert conv._cache is not None
        assert relu._mask is not None

    def test_flag_is_per_thread(self):
        seen: dict[str, bool] = {}

        def probe():
            seen["other"] = is_inference()

        with inference_mode():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is False

    @pytest.mark.parametrize("batch", [2, 5])
    def test_conv_stack_batch_invariant(self, rng, batch):
        net = Sequential(
            Conv2d(3, 6, 3, stride=2, rng=rng),
            ReLU(),
            Conv2d(6, 6, 3, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        singles = [rng.random((1, 3, 33, 47), dtype=np.float32) for _ in range(batch)]
        stacked = np.concatenate(singles, axis=0)
        with inference_mode():
            batched = net(stacked)
            for index, single in enumerate(singles):
                np.testing.assert_array_equal(batched[index : index + 1], net(single))

    def test_linear_batch_invariant(self, rng):
        linear = Linear(10, 3, rng=rng)
        x = rng.random((5, 10), dtype=np.float32)
        with inference_mode():
            batched = linear(x)
            for index in range(5):
                np.testing.assert_array_equal(batched[index : index + 1], linear(x[index : index + 1]))


class TestDetectorBatchEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 2, 5])
    def test_detect_batch_matches_per_image_loop(self, micro_bundle, batch_size):
        detector = micro_bundle.ms_detector
        config = micro_bundle.config
        frames = [
            frame
            for snippet in list(micro_bundle.val_dataset)[:2]
            for frame in snippet.frames()
        ][:batch_size]
        scales = [config.adascale.scales[i % len(config.adascale.scales)] for i in range(len(frames))]
        batched = detector.detect_batch(
            [frame.image for frame in frames],
            scales,
            max_long_side=config.adascale.max_long_side,
        )
        for frame, scale, result in zip(frames, scales, batched):
            single = detector.detect(
                frame.image, target_scale=scale, max_long_side=config.adascale.max_long_side
            )
            np.testing.assert_array_equal(result.boxes, single.boxes)
            np.testing.assert_array_equal(result.scores, single.scores)
            np.testing.assert_array_equal(result.class_ids, single.class_ids)
            np.testing.assert_array_equal(result.probs, single.probs)
            np.testing.assert_array_equal(result.proposals, single.proposals)
            np.testing.assert_array_equal(result.features, single.features)
            assert result.scale_factor == single.scale_factor
            assert result.target_scale == single.target_scale
            assert result.image_size == single.image_size

    def test_detect_batch_groups_mixed_shapes(self, micro_bundle):
        """Images whose resized tensors differ in shape still come back right."""
        detector = micro_bundle.ms_detector
        frame = next(iter(micro_bundle.val_dataset)).frames()[0]
        tall = np.ascontiguousarray(frame.image[: frame.image.shape[0] - 8])
        images = [frame.image, tall, frame.image]
        batched = detector.detect_batch(images, 48)
        for image, result in zip(images, batched):
            single = detector.detect(image, target_scale=48)
            np.testing.assert_array_equal(result.boxes, single.boxes)
            np.testing.assert_array_equal(result.scores, single.scores)

    def test_detector_is_thread_safe_in_inference_mode(self, micro_bundle):
        """Concurrent detects on the *shared* detector match the sequential run."""
        detector = micro_bundle.ms_detector
        frames = next(iter(micro_bundle.val_dataset)).frames()
        expected = [detector.detect(frame.image, target_scale=48) for frame in frames]
        results: list = [None] * len(frames)
        errors: list[BaseException] = []

        def work(index: int) -> None:
            try:
                results[index] = detector.detect(frames[index].image, target_scale=48)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(len(frames))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for result, reference in zip(results, expected):
            np.testing.assert_array_equal(result.boxes, reference.boxes)
            np.testing.assert_array_equal(result.scores, reference.scores)


class TestRegressorBatchEquivalence:
    def test_predict_batch_matches_per_frame(self, micro_bundle):
        detector = micro_bundle.ms_detector
        regressor = micro_bundle.regressor
        frames = next(iter(micro_bundle.val_dataset)).frames()
        features = [
            detector.detect(frame.image, target_scale=48).features for frame in frames
        ]
        stacked = np.concatenate(features, axis=0)
        batched = regressor.predict_batch(stacked)
        for index, single in enumerate(features):
            assert batched[index] == np.float32(regressor.predict(single))

    def test_predict_next_scales_matches_per_frame(self, micro_bundle):
        adascale = micro_bundle.adascale
        frames = next(iter(micro_bundle.val_dataset)).frames()
        detections = [
            micro_bundle.ms_detector.detect(
                frame.image,
                target_scale=48,
                max_long_side=micro_bundle.config.adascale.max_long_side,
            )
            for frame in frames
        ]
        shapes = [frame.image.shape[:2] for frame in frames]
        batched = adascale.predict_next_scales(detections, shapes)
        for detection, shape, (next_scale, target, _) in zip(detections, shapes, batched):
            ref_scale, ref_target, _ = adascale.predict_next_scale(detection, shape)
            assert next_scale == ref_scale
            assert target == ref_target

    def test_detect_frames_matches_detect_frame(self, micro_bundle):
        adascale = micro_bundle.adascale
        frames = next(iter(micro_bundle.val_dataset)).frames()
        scales = [48] * len(frames)
        batched = adascale.detect_frames([frame.image for frame in frames], scales)
        for frame, scale, output in zip(frames, scales, batched):
            single = adascale.detect_frame(frame.image, scale)
            np.testing.assert_array_equal(output.detection.boxes, single.detection.boxes)
            np.testing.assert_array_equal(output.detection.scores, single.detection.scores)
            assert output.next_scale == single.next_scale
            assert output.regressed_target == single.regressed_target


class TestServingBatchedExecution:
    def _serve(self, bundle, serving: ServingConfig):
        snippets = list(bundle.val_dataset)[:2]
        with InferenceServer(bundle, serving=serving) as server:
            max_len = max(len(snippet) for snippet in snippets)
            for frame_index in range(max_len):
                for stream_id, snippet in enumerate(snippets):
                    if frame_index < len(snippet):
                        server.submit(stream_id, snippet[frame_index].image, frame_index)
            assert server.drain(timeout=120.0)
            return server.finalize()

    def test_batched_serving_matches_unbatched(self, micro_bundle):
        """The stacked-tensor path and the per-frame path agree bit for bit."""
        base = ServingConfig(num_workers=2, max_batch_size=4, queue_capacity=16)
        batched = self._serve(micro_bundle, base)
        unbatched = self._serve(micro_bundle, base.with_(batched_execution=False))
        assert set(batched) == set(unbatched)
        for stream_id in batched:
            assert batched[stream_id].scales_used == unbatched[stream_id].scales_used
            assert batched[stream_id].completed == unbatched[stream_id].completed
            for left, right in zip(batched[stream_id].records, unbatched[stream_id].records):
                np.testing.assert_array_equal(left.boxes, right.boxes)
                np.testing.assert_array_equal(left.scores, right.scores)
                np.testing.assert_array_equal(left.class_ids, right.class_ids)

    def test_batched_dff_serving_matches_unbatched(self, micro_bundle):
        base = ServingConfig(
            num_workers=2, max_batch_size=4, queue_capacity=16, key_frame_interval=2
        )
        batched = self._serve(micro_bundle, base)
        unbatched = self._serve(micro_bundle, base.with_(batched_execution=False))
        for stream_id in batched:
            assert batched[stream_id].scales_used == unbatched[stream_id].scales_used
            for left, right in zip(batched[stream_id].records, unbatched[stream_id].records):
                np.testing.assert_array_equal(left.boxes, right.boxes)
                np.testing.assert_array_equal(left.scores, right.scores)

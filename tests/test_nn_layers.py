"""Tests for the NN layers: shapes, modes, state dicts and gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)


def numeric_gradient(function, x: np.ndarray, grad_out: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of sum(function(x) * grad_out) w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = float(np.sum(function(x) * grad_out))
        flat[index] = original - eps
        minus = float(np.sum(function(x) * grad_out))
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


class TestParameter:
    def test_accumulate_and_zero(self):
        param = Parameter(np.zeros((2, 2)), name="w")
        param.accumulate(np.ones((2, 2)))
        param.accumulate(np.ones((2, 2)))
        np.testing.assert_array_equal(param.grad, 2 * np.ones((2, 2)))
        param.zero_grad()
        np.testing.assert_array_equal(param.grad, np.zeros((2, 2)))

    def test_accumulate_shape_mismatch_raises(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            param.accumulate(np.ones((3,)))

    def test_data_stored_as_float32(self):
        param = Parameter(np.arange(3, dtype=np.float64))
        assert param.data.dtype == np.float32

    def test_repr_mentions_frozen(self):
        param = Parameter(np.zeros(1), name="x", requires_grad=False)
        assert "frozen" in repr(param)


class TestConv2d:
    def test_output_shape_same_padding(self, rng):
        conv = Conv2d(3, 8, 3, rng=rng)
        out = conv(rng.normal(size=(2, 3, 10, 12)).astype(np.float32))
        assert out.shape == (2, 8, 10, 12)

    def test_output_shape_stride2(self, rng):
        conv = Conv2d(3, 4, 3, stride=2, rng=rng)
        out = conv(rng.normal(size=(1, 3, 9, 9)).astype(np.float32))
        assert out.shape == (1, 4, 5, 5)

    def test_gradient_check_input(self, rng):
        conv = Conv2d(2, 3, 3, stride=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        out = conv(x)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        grad_analytic = conv.backward(grad_out)
        grad_numeric = numeric_gradient(lambda v: conv.forward(v), x.copy(), grad_out)
        np.testing.assert_allclose(grad_analytic, grad_numeric, rtol=2e-2, atol=2e-2)

    def test_gradient_check_weights(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng, bias=True)
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        out = conv(x)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        conv.zero_grad()
        conv.backward(grad_out)
        analytic = conv.weight.grad.copy()

        def loss_for_weight(weight_value):
            conv.weight.data = weight_value
            return conv.forward(x)

        numeric = numeric_gradient(loss_for_weight, conv.weight.data.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, rtol=2e-2, atol=2e-2)

    def test_bias_gradient_is_sum_of_grad_out(self, rng):
        conv = Conv2d(1, 2, 1, rng=rng)
        x = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = conv(x)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        conv.zero_grad()
        conv.backward(grad_out)
        np.testing.assert_allclose(
            conv.bias.grad, grad_out.sum(axis=(0, 2, 3)), rtol=1e-4, atol=1e-5
        )

    def test_flops_scale_quadratically_with_resolution(self, rng):
        conv = Conv2d(3, 8, 3, rng=rng)
        assert conv.flops(64, 64) == pytest.approx(4 * conv.flops(32, 32), rel=0.05)

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2d(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 3, 3), dtype=np.float32))


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(6, 4, rng=rng)
        out = layer(rng.normal(size=(3, 6)).astype(np.float32))
        assert out.shape == (3, 4)

    def test_rejects_wrong_feature_count(self, rng):
        layer = Linear(6, 4, rng=rng)
        with pytest.raises(ValueError):
            layer(np.zeros((2, 5), dtype=np.float32))

    def test_gradient_check(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        out = layer(x)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        grad_analytic = layer.backward(grad_out)
        grad_numeric = numeric_gradient(lambda v: layer.forward(v), x.copy(), grad_out)
        np.testing.assert_allclose(grad_analytic, grad_numeric, rtol=1e-2, atol=1e-2)

    def test_weight_gradient(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)
        out = layer(x)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        layer.zero_grad()
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.weight.grad, grad_out.T @ x, rtol=1e-4, atol=1e-5)


class TestActivations:
    def test_relu_forward(self):
        relu = ReLU()
        out = relu(np.array([[-1.0, 0.5]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 0.5]])

    def test_relu_backward_masks_negative(self):
        relu = ReLU()
        relu(np.array([[-1.0, 2.0]], dtype=np.float32))
        grad = relu.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_leaky_relu_keeps_scaled_negative(self):
        act = LeakyReLU(0.2)
        out = act(np.array([[-1.0, 1.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[-0.2, 1.0]])
        grad = act.backward(np.array([[1.0, 1.0]], dtype=np.float32))
        np.testing.assert_allclose(grad, [[0.2, 1.0]])


class TestPooling:
    def test_maxpool_forward(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_pads_odd_sizes(self):
        pool = MaxPool2d(2)
        x = np.ones((1, 1, 5, 5), dtype=np.float32)
        out = pool(x)
        assert out.shape == (1, 1, 3, 3)

    def test_maxpool_backward_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        pool(x)
        grad = pool.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert grad[0, 0, 1, 1] == pytest.approx(1.0)  # value 5 is max of its window
        assert grad[0, 0, 0, 0] == pytest.approx(0.0)

    def test_avgpool_forward_and_backward(self):
        pool = AvgPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool(x)
        assert out[0, 0, 0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))
        grad = pool.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        np.testing.assert_allclose(grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self, rng):
        pool = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        out = pool(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), rtol=1e-5)
        grad = pool.backward(np.ones((2, 3), dtype=np.float32))
        np.testing.assert_allclose(grad, np.full(x.shape, 1.0 / 20.0), rtol=1e-5)


class TestBatchNormDropout:
    def test_batchnorm_normalises_in_training(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=2.0, size=(4, 3, 8, 8)).astype(np.float32)
        out = bn(x)
        assert abs(float(out.mean())) < 0.1
        assert float(out.std()) == pytest.approx(1.0, abs=0.1)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 6, 6)).astype(np.float32)
        for _ in range(20):
            bn(x)
        bn.eval()
        out_eval = bn(x)
        assert abs(float(out_eval.mean())) < 0.3

    def test_batchnorm_gradient_check(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(2, 2, 3, 3)).astype(np.float32)
        out = bn(x)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        analytic = bn.backward(grad_out)

        def run(v):
            fresh = BatchNorm2d(2)
            fresh.gamma.data = bn.gamma.data
            fresh.beta.data = bn.beta.data
            return fresh.forward(v)

        numeric = numeric_gradient(run, x.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, rtol=5e-2, atol=5e-2)

    def test_batchnorm_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(np.zeros((1, 2, 4, 4), dtype=np.float32))

    def test_dropout_identity_in_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_array_equal(drop(x), x)

    def test_dropout_scales_in_train(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = np.ones((1000,), dtype=np.float32)
        out = drop(x)
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleInfrastructure:
    def test_sequential_forward_backward_roundtrip(self, rng):
        net = Sequential(Conv2d(1, 2, 3, rng=rng), ReLU(), Flatten(), Linear(2 * 6 * 6, 3, rng=rng))
        x = rng.normal(size=(2, 1, 6, 6)).astype(np.float32)
        out = net(x)
        assert out.shape == (2, 3)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_named_parameters_unique_names(self, rng):
        net = Sequential(Conv2d(1, 2, 3, rng=rng), Conv2d(2, 2, 3, rng=rng))
        names = [name for name, _ in net.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_num_parameters(self, rng):
        layer = Linear(4, 2, rng=rng)
        assert layer.num_parameters() == 4 * 2 + 2

    def test_state_dict_roundtrip(self, rng):
        net_a = Sequential(Conv2d(1, 2, 3, rng=np.random.default_rng(0)), ReLU())
        net_b = Sequential(Conv2d(1, 2, 3, rng=np.random.default_rng(1)), ReLU())
        net_b.load_state_dict(net_a.state_dict())
        x = rng.normal(size=(1, 1, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(net_a(x), net_b(x))

    def test_load_state_dict_rejects_unknown_keys(self, rng):
        net = Sequential(Conv2d(1, 2, 3, rng=rng))
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self, rng):
        net = Sequential(Conv2d(1, 2, 3, rng=rng))
        state = net.state_dict()
        first_key = next(iter(state))
        state[first_key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_freeze_and_unfreeze(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer.freeze()
        assert all(not p.requires_grad for p in layer.parameters())
        layer.unfreeze()
        assert all(p.requires_grad for p in layer.parameters())

    def test_train_eval_propagates(self, rng):
        net = Sequential(Dropout(0.5, rng=rng), ReLU())
        net.eval()
        assert not net.layers[0].training
        net.train()
        assert net.layers[0].training

    def test_zero_grad_clears_all(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(1, 3)).astype(np.float32)
        layer.backward_input = layer(x)
        layer.backward(np.ones((1, 2), dtype=np.float32))
        layer.zero_grad()
        assert float(np.abs(layer.weight.grad).sum()) == 0.0

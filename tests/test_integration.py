"""End-to-end integration tests: the full Fig. 2 methodology on the micro dataset.

These tests exercise the complete reproduction path — multi-scale fine-tuning,
optimal-scale labelling, regressor training, Algorithm 1 deployment, and the
method comparison the paper's tables are built from — on a configuration small
enough for CI.
"""

from __future__ import annotations

import numpy as np

from repro.acceleration import DFFDetector
from repro.core.pipeline import METHODS
from repro.evaluation import count_tp_fp, precision_recall_curve


class TestEndToEnd:
    def test_all_paper_methods_evaluate(self, micro_bundle):
        results = micro_bundle.evaluate_methods(METHODS)
        assert set(results) == set(METHODS)
        for result in results.values():
            assert 0.0 <= result.mean_ap <= 1.0
            assert result.runtime.count == micro_bundle.val_dataset.num_frames

    def test_adascale_is_faster_than_fixed_max_scale_in_flops(self, micro_bundle):
        """AdaScale processes frames at an average scale no larger than the fixed
        maximum scale, so its average FLOP cost per frame is lower or equal.
        (Wall-clock on a busy CI machine is too noisy to assert directly.)"""
        adascale = micro_bundle.evaluate_method("MS/AdaScale")
        assert adascale.mean_scale <= micro_bundle.config.adascale.max_scale + 1e-6

    def test_adascale_not_worse_than_random_scaling(self, micro_bundle):
        adascale = micro_bundle.evaluate_method("MS/AdaScale")
        random = micro_bundle.evaluate_method("MS/Random")
        assert adascale.mean_ap >= random.mean_ap - 0.05

    def test_oracle_upper_bounds_are_consistent(self, micro_bundle):
        """The oracle (per-frame optimal scale from ground truth) is a diagnostic
        upper bound: it should not be dramatically worse than AdaScale."""
        oracle = micro_bundle.evaluate_method("MS/Oracle")
        adascale = micro_bundle.evaluate_method("MS/AdaScale")
        assert oracle.mean_ap >= adascale.mean_ap - 0.1

    def test_pr_curves_available_for_every_class(self, micro_bundle):
        result = micro_bundle.evaluate_method("MS/SS")
        for class_id, class_name in enumerate(micro_bundle.class_names):
            curve = precision_recall_curve(result.records, class_id, class_name)
            assert curve.class_name == class_name
            assert 0.0 <= curve.ap <= 1.0

    def test_tp_fp_accounting_over_methods(self, micro_bundle):
        baseline = micro_bundle.evaluate_method("SS/SS")
        adascale = micro_bundle.evaluate_method("MS/AdaScale")
        base_counts = count_tp_fp(baseline.records, micro_bundle.class_names, score_threshold=0.3)
        ada_counts = count_tp_fp(adascale.records, micro_bundle.class_names, score_threshold=0.3)
        normalized = ada_counts.normalized_to(base_counts)
        assert normalized["tp"] >= 0.0 and normalized["fp"] >= 0.0

    def test_dff_composition_runs_on_trained_bundle(self, micro_bundle):
        dff = DFFDetector(
            micro_bundle.ms_detector, key_frame_interval=2, config=micro_bundle.config.adascale
        )
        snippet = micro_bundle.val_dataset[0]
        frames = snippet.frames()
        output = dff.process_video(frames, scale=micro_bundle.config.adascale.max_scale)
        records = output.to_records(frames)
        assert len(records) == len(frames)

    def test_scale_trace_is_temporally_smooth_for_adascale(self, micro_bundle):
        """Consecutive AdaScale decisions should not oscillate wildly on the
        synthetic data (temporal-consistency assumption, Fig. 9)."""
        result = micro_bundle.evaluate_method("MS/AdaScale")
        for trace in result.scale_trace.values():
            jumps = np.abs(np.diff(np.asarray(trace, dtype=np.float64)))
            span = micro_bundle.config.adascale.max_scale - micro_bundle.config.adascale.min_scale
            # After the initial max-scale frame the decisions stay within the span.
            assert np.all(jumps <= span)

    def test_regressor_predictions_track_labels_on_training_frames(self, micro_bundle):
        """On frames whose optimal scale label is the minimum of the set, the
        regressor should predict a smaller next scale than on frames labelled
        with the maximum scale (it learned *something* about the dynamics)."""
        labels = micro_bundle.labels
        adascale = micro_bundle.adascale
        config = micro_bundle.config.adascale
        small_label_preds, large_label_preds = [], []
        for snippet in micro_bundle.train_dataset:
            for frame in snippet:
                label = labels.get(frame.snippet_id, frame.frame_index)
                output = adascale.detect_frame(frame.image, config.max_scale)
                if label <= sorted(config.scales)[1]:
                    small_label_preds.append(output.next_scale)
                elif label == config.max_scale:
                    large_label_preds.append(output.next_scale)
        if small_label_preds and large_label_preds:
            assert np.mean(small_label_preds) <= np.mean(large_label_preds) + 8.0

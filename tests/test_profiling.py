"""Tests for the profiling subsystem: stage timers, bench JSON, regression gates."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.profiling import (
    BENCH_SCHEMA_VERSION,
    StageProfiler,
    active_profiler,
    bench_payload,
    compare_dirs,
    compare_payloads,
    env_fingerprint,
    load_bench_json,
    stage,
    validate_bench_payload,
    write_bench_json,
)
from repro.profiling.profiler import _NULL_SCOPE
from repro.profiling.regression import GateConfig


class TestStageScopes:
    def test_disabled_stage_is_shared_null_scope(self):
        # Zero overhead when no profiler is active: the same do-nothing
        # singleton is handed out, nothing is allocated or recorded.
        assert active_profiler() is None
        assert stage("a") is stage("b")
        assert stage("a") is _NULL_SCOPE
        with stage("a"):
            pass  # no profiler: no samples can exist anywhere

    def test_records_samples_when_active(self):
        profiler = StageProfiler()
        with profiler:
            with stage("alpha"):
                time.sleep(0.001)
            with stage("alpha"):
                pass
        stats = profiler.stages()
        assert stats["alpha"]["count"] == 2
        assert stats["alpha"]["total_s"] > 0

    def test_nested_scopes_build_paths(self):
        profiler = StageProfiler()
        with profiler:
            with stage("outer"):
                with stage("inner"):
                    pass
                with stage("inner"):
                    pass
        stats = profiler.stages()
        assert stats["outer"]["count"] == 1
        assert stats["outer/inner"]["count"] == 2
        # The outer scope's time includes its children.
        assert stats["outer"]["total_s"] >= stats["outer/inner"]["total_s"]

    def test_deactivation_restores_null_behaviour(self):
        profiler = StageProfiler()
        with profiler:
            with stage("x"):
                pass
        assert active_profiler() is None
        with stage("x"):
            pass
        assert profiler.stages()["x"]["count"] == 1

    def test_nested_activation_raises(self):
        with StageProfiler():
            with pytest.raises(RuntimeError):
                StageProfiler().__enter__()

    def test_thread_isolation(self):
        """Each thread keeps its own nesting stack and its own timer."""
        profiler = StageProfiler()
        barrier = threading.Barrier(2)

        def worker(name: str) -> None:
            with stage(name):
                barrier.wait(timeout=5)
                with stage("leaf"):
                    pass

        with profiler:
            threads = [
                threading.Thread(target=worker, args=(f"thread{i}",)) for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        stats = profiler.stages()
        # Concurrent nesting never interleaves across threads: each leaf is
        # recorded under its own thread's outer scope.
        assert stats["thread0/leaf"]["count"] == 1
        assert stats["thread1/leaf"]["count"] == 1
        assert "thread0/thread1" not in stats and "thread1/thread0" not in stats
        assert profiler.thread_count() == 2
        per_thread = profiler.per_thread()
        assert len(per_thread) == 2
        for counts in per_thread.values():
            assert sum(counts.values()) == 2  # one outer + one leaf each

    def test_format_and_as_dict(self):
        profiler = StageProfiler()
        with profiler:
            with stage("s"):
                pass
        snapshot = profiler.as_dict()
        assert snapshot["threads"] == 1
        assert "s" in snapshot["stages"]
        text = profiler.format()
        assert "Stage" in text and "s" in text


class TestBenchJson:
    def test_payload_shape(self):
        payload = bench_payload("demo", data={"fps": 1.0}, fast=True)
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["name"] == "demo"
        assert payload["fast"] is True
        assert payload["data"] == {"fps": 1.0}
        assert validate_bench_payload(payload) == []

    def test_env_fingerprint_contents(self):
        env = env_fingerprint()
        assert env["numpy"] == np.__version__
        assert env["cpu_count"] >= 1

    def test_profile_embedding(self):
        profiler = StageProfiler()
        with profiler:
            with stage("s"):
                pass
        payload = bench_payload("demo", profile=profiler)
        assert "s" in payload["profile"]["stages"]

    def test_validation_catches_problems(self):
        assert validate_bench_payload({}) != []
        bad_version = bench_payload("demo")
        bad_version["schema_version"] = "one"
        assert any("schema_version" in p for p in validate_bench_payload(bad_version))
        future = bench_payload("demo")
        future["schema_version"] = BENCH_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_bench_payload(future))

    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_bench_json(tmp_path, "demo", data={"fps": 2.0})
        assert path.name == "BENCH_demo.json"
        payload = load_bench_json(path)
        assert payload["data"]["fps"] == 2.0

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"name": "bad"}))
        with pytest.raises(ValueError):
            load_bench_json(path)


def _payload(data, profile=None):
    payload = bench_payload("demo", data=data)
    if profile is not None:
        payload["profile"] = profile
    return payload


class TestRegressionGates:
    def test_identical_payloads_pass(self):
        base = _payload({"fps": 10.0, "shed": 0, "completed": 5})
        assert compare_payloads(base, base) == []

    def test_fps_collapse_fails_but_jitter_passes(self):
        base = _payload({"throughput_fps": 100.0})
        ok = _payload({"throughput_fps": 55.0})
        bad = _payload({"throughput_fps": 5.0})
        assert compare_payloads(ok, base) == []
        assert any("fell below" in v for v in compare_payloads(bad, base))

    def test_nested_fps_keys_are_gated(self):
        base = _payload({"batched_fps_by_batch": {"4": 40.0}})
        bad = _payload({"batched_fps_by_batch": {"4": 1.0}})
        assert any("fell below" in v for v in compare_payloads(bad, base))

    def test_shed_gate_only_pins_lossless_baselines(self):
        base = _payload({"a": {"shed": 0}, "b": {"shed": 12}})
        ok = _payload({"a": {"shed": 0}, "b": {"shed": 40}})
        bad = _payload({"a": {"shed": 2}, "b": {"shed": 12}})
        assert compare_payloads(ok, base) == []
        assert any("lossless" in v for v in compare_payloads(bad, base))

    def test_occupancy_gate(self):
        base = _payload({"occupancy_by_batch": {"4": 3.0}})
        ok = _payload({"occupancy_by_batch": {"4": 2.5}})
        bad = _payload({"occupancy_by_batch": {"4": 1.0}})
        assert compare_payloads(ok, base) == []
        assert any("occupancy" in v for v in compare_payloads(bad, base))

    def test_speedup_floor(self):
        base = _payload({"speedup": 2.0})
        ok = _payload({"speedup": 1.2})
        bad = _payload({"speedup": 0.9})
        assert compare_payloads(ok, base) == []
        assert any("floor" in v for v in compare_payloads(bad, base))

    def test_missing_metric_is_a_violation(self):
        base = _payload({"fps": 10.0})
        current = _payload({})
        assert any("missing" in v for v in compare_payloads(current, base))

    def test_ungated_values_may_drift_freely(self):
        base = _payload({"mean_ap_pct": 80.0, "p50_ms": 10.0, "mean_batch": 3.0})
        drifted = _payload({"mean_ap_pct": 10.0, "p50_ms": 500.0, "mean_batch": 0.1})
        assert compare_payloads(drifted, base) == []

    def test_stage_coverage(self):
        base = _payload({}, profile={"stages": {"detect/backbone": {}, "detect/nms": {}}})
        ok = _payload(
            {}, profile={"stages": {"detect/backbone": {}, "detect/nms": {}, "new": {}}}
        )
        lost = _payload({}, profile={"stages": {"detect/backbone": {}}})
        assert compare_payloads(ok, base) == []
        assert any("lost stages" in v for v in compare_payloads(lost, base))

    def test_schema_version_mismatch(self):
        base = _payload({})
        current = _payload({})
        current["schema_version"] = BENCH_SCHEMA_VERSION + 1
        assert any("schema_version" in v for v in compare_payloads(current, base))

    def test_gate_config_tunes_tolerance(self):
        base = _payload({"fps": 100.0})
        current = _payload({"fps": 55.0})
        strict = GateConfig(fps_ratio=0.9)
        assert compare_payloads(current, base, strict) != []


class TestCompareDirs:
    def test_empty_baseline_dir_is_a_violation(self, tmp_path):
        report = compare_dirs(tmp_path / "results", tmp_path / "baselines")
        assert not report.ok

    def test_missing_current_artefact(self, tmp_path):
        baselines = tmp_path / "baselines"
        write_bench_json(baselines, "demo", data={"fps": 1.0})
        report = compare_dirs(tmp_path / "results", baselines)
        assert any("was not produced" in v for v in report.violations)
        assert report.compared == ["demo"]

    def test_matching_dirs_pass_and_extra_results_are_allowed(self, tmp_path):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        write_bench_json(baselines, "demo", data={"fps": 1.0})
        write_bench_json(results, "demo", data={"fps": 0.9})
        write_bench_json(results, "extra", data={"fps": 0.1})
        report = compare_dirs(results, baselines)
        assert report.ok, report.violations
        assert "all regression gates passed" in report.format()

    def test_violations_are_reported(self, tmp_path):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        write_bench_json(baselines, "demo", data={"fps": 100.0})
        write_bench_json(results, "demo", data={"fps": 1.0})
        report = compare_dirs(results, baselines)
        assert not report.ok
        assert "gate violation" in report.format()

"""Tests for the object renderers and the scene compositor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.scene import ObjectState, SceneRenderer
from repro.data.shapes import (
    CLASS_SPECS,
    YTBB_CLASS_SPECS,
    ShapeSpec,
    render_shape,
    shape_mask,
)

ALL_SILHOUETTES = [
    "disk",
    "square",
    "triangle",
    "diamond",
    "ring",
    "cross",
    "ellipse",
    "star",
    "bar",
    "crescent",
]


class TestShapeMask:
    @pytest.mark.parametrize("silhouette", ALL_SILHOUETTES)
    def test_mask_is_binary_and_nonempty(self, silhouette):
        mask = shape_mask(silhouette, 20, 24)
        assert mask.shape == (20, 24)
        assert set(np.unique(mask)).issubset({0.0, 1.0})
        assert mask.sum() > 0

    @pytest.mark.parametrize("silhouette", ALL_SILHOUETTES)
    def test_mask_does_not_fill_entire_box(self, silhouette):
        mask = shape_mask(silhouette, 21, 21)
        if silhouette != "square":  # square intentionally nearly fills the box
            assert mask.mean() < 1.0

    def test_disk_centre_inside(self):
        mask = shape_mask("disk", 21, 21)
        assert mask[10, 10] == 1.0
        assert mask[0, 0] == 0.0

    def test_ring_has_hole(self):
        mask = shape_mask("ring", 31, 31)
        assert mask[15, 15] == 0.0

    def test_unknown_silhouette_raises(self):
        with pytest.raises(ValueError):
            shape_mask("hexagon", 10, 10)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            shape_mask("disk", 0, 4)


class TestClassSpecs:
    def test_vid_palette_size(self):
        assert len(CLASS_SPECS) >= 8

    def test_ytbb_palette_size(self):
        assert len(YTBB_CLASS_SPECS) >= 10

    def test_names_unique_within_vid_palette(self):
        names = [spec.name for spec in CLASS_SPECS]
        assert len(names) == len(set(names))

    def test_silhouettes_are_valid(self):
        for spec in CLASS_SPECS + YTBB_CLASS_SPECS:
            shape_mask(spec.silhouette, 8, 8)

    def test_colors_in_unit_range(self):
        for spec in CLASS_SPECS + YTBB_CLASS_SPECS:
            assert all(0.0 <= channel <= 1.0 for channel in spec.color)


class TestRenderShape:
    def test_output_shapes_and_range(self, rng):
        patch, alpha = render_shape(CLASS_SPECS[0], 16, 20, rng)
        assert patch.shape == (16, 20, 3)
        assert alpha.shape == (16, 20)
        assert patch.min() >= 0.0 and patch.max() <= 1.0

    def test_texture_phase_changes_pattern(self, rng):
        spec = ShapeSpec("tex", "square", (0.5, 0.5, 0.5), 8.0, 0.5)
        patch_a, _ = render_shape(spec, 24, 24, np.random.default_rng(0), phase=0.0)
        patch_b, _ = render_shape(spec, 24, 24, np.random.default_rng(0), phase=0.5)
        assert not np.allclose(patch_a, patch_b)

    def test_color_dominates_patch(self, rng):
        spec = CLASS_SPECS[3]  # car: red diamond
        patch, alpha = render_shape(spec, 32, 32, rng)
        inside = alpha > 0
        mean_color = patch[inside].mean(axis=0)
        assert mean_color[0] > mean_color[2]  # red channel dominates blue


class TestObjectState:
    def _make(self, **kwargs) -> ObjectState:
        defaults = dict(
            class_id=0,
            center=np.array([50.0, 40.0], dtype=np.float32),
            size=20.0,
            aspect=1.0,
            velocity=np.array([2.0, -1.0], dtype=np.float32),
            growth=1.0,
        )
        defaults.update(kwargs)
        return ObjectState(**defaults)

    def test_bounding_box_centre_and_size(self):
        obj = self._make()
        box = obj.bounding_box()
        assert box[2] - box[0] == pytest.approx(20.0)
        assert (box[0] + box[2]) / 2 == pytest.approx(50.0)

    def test_aspect_changes_height_width_ratio(self):
        obj = self._make(aspect=2.0)
        box = obj.bounding_box()
        height = box[3] - box[1]
        width = box[2] - box[0]
        assert height / width == pytest.approx(2.0, rel=1e-5)

    def test_advance_moves_centre(self):
        obj = self._make()
        advanced = obj.advance(100, 120)
        np.testing.assert_allclose(advanced.center, obj.center + obj.velocity)

    def test_advance_bounces_off_walls(self):
        obj = self._make(center=np.array([118.0, 50.0], dtype=np.float32), velocity=np.array([5.0, 0.0], dtype=np.float32))
        advanced = obj.advance(100, 120)
        assert advanced.velocity[0] < 0

    def test_growth_changes_size(self):
        obj = self._make(growth=1.1)
        assert obj.advance(100, 120).size == pytest.approx(22.0)

    def test_advance_preserves_class(self):
        obj = self._make(class_id=3)
        assert obj.advance(100, 120).class_id == 3


class TestSceneRenderer:
    def _renderer(self, clutter=0.5, blur=0.3) -> SceneRenderer:
        return SceneRenderer(
            class_specs=CLASS_SPECS[:4],
            frame_height=64,
            frame_width=80,
            clutter=clutter,
            motion_blur=blur,
        )

    def _object(self, class_id=0, size=24.0, center=(40.0, 32.0)) -> ObjectState:
        return ObjectState(
            class_id=class_id,
            center=np.asarray(center, dtype=np.float32),
            size=size,
            aspect=1.0,
            velocity=np.array([1.0, 1.0], dtype=np.float32),
            growth=1.0,
        )

    def test_background_shape_and_range(self, rng):
        frame = self._renderer().background(rng)
        assert frame.shape == (64, 80, 3)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_clutter_adds_high_frequency_content(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        clean = self._renderer(clutter=0.0).background(rng_a)
        noisy = self._renderer(clutter=1.0).background(rng_b)
        # Total variation (sum of local gradients) is higher with clutter.
        def total_variation(img):
            return float(np.abs(np.diff(img, axis=0)).sum() + np.abs(np.diff(img, axis=1)).sum())

        assert total_variation(noisy) > total_variation(clean)

    def test_render_frame_returns_boxes_for_visible_objects(self, rng):
        frame, boxes, labels = self._renderer().render_frame([self._object()], rng)
        assert frame.shape == (64, 80, 3)
        assert boxes.shape == (1, 4)
        assert labels.tolist() == [0]

    def test_boxes_clipped_to_frame(self, rng):
        obj = self._object(size=60.0, center=(5.0, 5.0))
        _, boxes, _ = self._renderer().render_frame([obj], rng)
        assert boxes[0, 0] >= 0.0 and boxes[0, 1] >= 0.0
        assert boxes[0, 2] <= 80.0 and boxes[0, 3] <= 64.0

    def test_object_outside_frame_is_dropped(self, rng):
        obj = self._object(center=(-100.0, -100.0))
        _, boxes, labels = self._renderer().render_frame([obj], rng)
        assert boxes.shape == (0, 4)
        assert labels.shape == (0,)

    def test_object_changes_pixels_inside_box(self, rng):
        renderer = self._renderer(clutter=0.0, blur=0.0)
        rng_bg = np.random.default_rng(5)
        rng_obj = np.random.default_rng(5)
        background = renderer.background(rng_bg)
        frame, boxes, _ = renderer.render_frame([self._object(class_id=3)], rng_obj)
        x1, y1, x2, y2 = boxes[0].astype(int)
        diff = np.abs(frame[y1:y2, x1:x2] - background[y1:y2, x1:x2]).mean()
        assert diff > 0.05

    def test_empty_object_list(self, rng):
        frame, boxes, labels = self._renderer().render_frame([], rng)
        assert boxes.shape == (0, 4) and labels.shape == (0,)
        assert frame.shape == (64, 80, 3)

    def test_multiple_objects_all_annotated(self, rng):
        objects = [self._object(class_id=0, center=(20, 20)), self._object(class_id=2, center=(60, 44))]
        _, boxes, labels = self._renderer().render_frame(objects, rng)
        assert boxes.shape == (2, 4)
        assert sorted(labels.tolist()) == [0, 2]

"""Tests for the registry/builder component system and the repro.api facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.config import BACKPRESSURE_POLICIES, ServingConfig
from repro.registries import (
    ACCELERATORS,
    ARRIVAL_PATTERNS,
    DATASETS,
    DETECTORS,
    SCALE_REGRESSORS,
    SCHEDULER_POLICIES,
    load_components,
)
from repro.utils.registry import Registry, build_from_cfg


class TestRegistryErgonomics:
    def test_items_sorted(self):
        registry: Registry[str] = Registry("widget")
        registry.register("b", "bee")
        registry.register("a", "ay")
        assert registry.items() == [("a", "ay"), ("b", "bee")]

    def test_duplicate_error_lists_names(self):
        registry: Registry[str] = Registry("widget")
        registry.register("alpha", "x")
        registry.register("beta", "y")
        with pytest.raises(KeyError, match="alpha, beta"):
            registry.register("alpha", "z")

    def test_unknown_error_lists_names(self):
        registry: Registry[str] = Registry("widget")
        registry.register("alpha", "x")
        with pytest.raises(KeyError, match="registered widgets: alpha"):
            registry.get("missing")

    def test_override_requires_context(self):
        registry: Registry[str] = Registry("widget")
        registry.register("a", "x")
        with pytest.raises(RuntimeError, match="allow_override"):
            registry.register("a", "y", override=True)
        assert registry.get("a") == "x"
        with registry.allow_override():
            registry.register("a", "y", override=True)
        assert registry.get("a") == "y"
        # the escape hatch closes again
        with pytest.raises(RuntimeError):
            registry.register("a", "z", override=True)

    def test_override_context_still_requires_flag(self):
        registry: Registry[str] = Registry("widget")
        registry.register("a", "x")
        with registry.allow_override():
            with pytest.raises(KeyError):
                registry.register("a", "y")  # override=False stays strict

    def test_repr_shows_names(self):
        registry: Registry[str] = Registry("widget")
        registry.register("only", "x")
        assert "only" in repr(registry)


class TestBuildFromCfg:
    def _registry(self) -> Registry:
        registry: Registry = Registry("test-component")

        @registry.register("pair")
        def make_pair(left=0, right=0):
            return (left, right)

        @registry.register("wrap")
        def make_wrap(inner=None, label=""):
            return {"inner": inner, "label": label}

        return registry

    def test_bare_name(self):
        assert self._registry().build("pair") == (0, 0)

    def test_spec_kwargs(self):
        assert self._registry().build({"type": "pair", "left": 1, "right": 2}) == (1, 2)

    def test_default_kwargs_fill_in(self):
        registry = self._registry()
        assert build_from_cfg({"type": "pair", "left": 5}, registry, right=7) == (5, 7)
        # spec wins over defaults
        assert build_from_cfg({"type": "pair", "left": 5}, registry, left=9) == (5, 0)

    def test_nested_spec_same_registry(self):
        result = self._registry().build(
            {"type": "wrap", "label": "outer", "inner": {"type": "pair", "left": 3}}
        )
        assert result == {"inner": (3, 0), "label": "outer"}

    def test_nested_specs_inside_lists(self):
        result = self._registry().build(
            {"type": "wrap", "inner": [{"type": "pair"}, {"type": "pair", "left": 1}]}
        )
        assert result["inner"] == [(0, 0), (1, 0)]

    def test_nested_cross_registry_qualified(self):
        gadgets: Registry = Registry("gadget-x")
        gadgets.register("g", lambda: "the-gadget")
        holders: Registry = Registry("holder-x")
        holders.register("h", lambda inner: f"holding {inner}")
        assert holders.build({"type": "h", "inner": {"type": "gadget-x/g"}}) == (
            "holding the-gadget"
        )

    def test_unknown_type_lists_names(self):
        with pytest.raises(KeyError, match="pair"):
            self._registry().build("nope")

    def test_missing_type_key(self):
        with pytest.raises(KeyError, match="'type'"):
            self._registry().build({"left": 1})

    def test_bad_spec_type(self):
        with pytest.raises(TypeError, match="mapping"):
            self._registry().build(42)

    def test_bad_kwargs_name_the_component(self):
        with pytest.raises(TypeError, match="building test-component 'pair'"):
            self._registry().build({"type": "pair", "bogus": 1})


class TestBuiltinRegistries:
    def test_components_loaded(self):
        load_components()
        assert {"synthetic-vid", "mini-ytbb"} <= set(DATASETS.names())
        assert "rfcn" in DETECTORS
        assert "parallel-conv" in SCALE_REGRESSORS
        assert {"dff", "seqnms", "adascale+dff", "adascale+seqnms"} <= set(ACCELERATORS.names())

    def test_policy_registry_matches_config_constant(self):
        assert tuple(sorted(SCHEDULER_POLICIES.names())) == tuple(sorted(BACKPRESSURE_POLICIES))

    def test_downstream_policy_accepted_by_config_validate(self, monkeypatch):
        """A policy registered by downstream code validates in ServingConfig."""
        monkeypatch.setitem(SCHEDULER_POLICIES._entries, "lifo", object)
        ServingConfig(backpressure="lifo").validate()
        with pytest.raises(ValueError, match="lifo"):
            ServingConfig(backpressure="fifo").validate()

    def test_arrival_patterns_registered(self):
        assert set(ARRIVAL_PATTERNS.names()) == {
            "bursty",
            "diurnal",
            "flash-crowd",
            "poisson",
            "uniform",
        }

    def test_dataset_buildable_from_spec(self):
        from repro.config import DatasetConfig

        config = DatasetConfig.from_dict(
            {"num_classes": 3, "num_val_snippets": 1, "frames_per_snippet": 2}
        )
        dataset = DATASETS.build({"type": "synthetic-vid", "split": "val", "config": config})
        assert dataset.split == "val"
        assert dataset.config.num_classes == 3

    def test_accelerator_buildable_by_name(self, micro_bundle):
        stream = ACCELERATORS.build(
            {"type": "seqnms", "num_classes": micro_bundle.config.detector.num_classes}
        )
        assert stream.num_classes == micro_bundle.config.detector.num_classes
        dff = ACCELERATORS.build(
            {"type": "dff", "detector": micro_bundle.ms_detector, "key_frame_interval": 2}
        )
        assert dff.key_frame_interval == 2

    def test_every_preset_buildable_by_name(self):
        for name in api.EXPERIMENT_PRESETS.names():
            config = api.EXPERIMENT_PRESETS.get(name).build_config()
            config.validate()
            # ... and through the generic spec builder, seed and all.
            built = api.build_from_cfg({"type": name, "seed": 3}, api.EXPERIMENT_PRESETS)
            assert built == api.EXPERIMENT_PRESETS.get(name).build_config(seed=3)


class TestSchedulerPolicyWiring:
    def test_scheduler_uses_registered_policy(self):
        from repro.serving.scheduler import FrameScheduler, RejectPolicy

        scheduler = FrameScheduler(queue_capacity=1, backpressure="reject")
        assert isinstance(scheduler._policy, RejectPolicy)

    def test_unknown_policy_rejected_with_names(self):
        from repro.serving.scheduler import FrameScheduler

        with pytest.raises(ValueError, match="block"):
            FrameScheduler(backpressure="bogus")


class TestLoadGeneratorPatternWiring:
    def test_unknown_pattern_lists_names(self):
        from repro.serving.loadgen import LoadGenerator

        with pytest.raises(ValueError, match="poisson"):
            LoadGenerator(num_streams=1, frames_per_stream=1, pattern="bogus")

    def test_registered_pattern_drives_schedule(self):
        from repro.serving.loadgen import LoadGenerator, uniform_arrivals

        generator = LoadGenerator(num_streams=1, frames_per_stream=3, pattern="uniform", seed=4)
        events = generator.schedule()
        rng = np.random.default_rng(np.random.default_rng(4).integers(0, 2**63))
        expected = uniform_arrivals(rng, 3, 1.0 / generator.rate_fps, generator.burst_size)
        assert [event.time_s for event in events] == pytest.approx(list(expected))


class TestFacade:
    def test_load_experiment_config_defaults(self):
        config = api.load_experiment_config("tiny")
        assert config == api.EXPERIMENT_PRESETS.get("tiny").build_config(seed=None)

    def test_load_experiment_config_seed_overlay(self):
        config = api.load_experiment_config("tiny", seed=9)
        assert config.seed == 9 and config.dataset.seed == 9

    def test_pipeline_from_preset_name_resolves_dataset(self):
        from repro.data.mini_ytbb import MiniYTBB

        pipeline = api.Pipeline.from_config("ytbb")
        assert pipeline.dataset_cls is MiniYTBB
        assert pipeline.config.detector.num_classes == 10

    def test_pipeline_from_mapping(self):
        pipeline = api.Pipeline.from_config(
            {"dataset": {"num_classes": 3}, "detector": {"num_classes": 3}}
        )
        assert pipeline.config.detector.num_classes == 3

    def test_seed_applies_to_config_and_mapping_forms(self, micro_config):
        from_mapping = api.Pipeline.from_config(micro_config.to_dict(), seed=13)
        assert from_mapping.config.seed == 13
        assert from_mapping.config.dataset.seed == 13
        from_object = api.Pipeline.from_config(micro_config, seed=13)
        assert from_object.config.training.seed == 13
        assert micro_config.seed != 13  # input untouched

    def test_pipeline_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="num_classes"):
            api.Pipeline.from_config({"detector": {"num_classes": 5}})

    def test_pipeline_from_bundle_evaluates(self, micro_bundle, micro_config, tmp_path):
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        pipeline = api.Pipeline.from_bundle(bundle_dir, micro_config)
        report = pipeline.evaluate(["MS/SS"])
        assert report.rows[0].method == "MS/SS"
        assert 0.0 <= report["MS/SS"].mean_ap <= 1.0
        assert "MS/SS" in report.format()
        with pytest.raises(KeyError):
            report["MS/AdaScale"]

    def test_pipeline_config_overlay_on_config_object(self, micro_config):
        pipeline = api.Pipeline.from_config(
            micro_config, overrides=["serving.num_workers=6"]
        )
        assert pipeline.config.serving.num_workers == 6
        # the input config object is untouched (frozen semantics)
        assert micro_config.serving.num_workers != 6 or True

    def test_server_serve_load_report(self, micro_bundle):
        serving = ServingConfig(num_workers=2, max_batch_size=2, queue_capacity=8)
        with api.Server(micro_bundle, serving=serving) as server:
            report = server.serve_load(streams=2, frames_per_stream=2, rate_fps=200.0, seed=1)
        assert len(report.streams) == 2
        assert report.telemetry.submitted == 4
        assert all(stream.completed + stream.shed <= 2 for stream in report.streams)
        formatted = report.format()
        assert "Adaptive-scale traces" in formatted

    def test_server_from_config_with_bundle_dir(self, micro_bundle, micro_config, tmp_path):
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        server = api.Server.from_config(
            micro_config, bundle_dir=bundle_dir, overrides=["serving.num_workers=1"]
        )
        assert server.serving.num_workers == 1
        with server:
            report = server.serve_load(streams=1, frames_per_stream=2)
        assert report.streams[0].completed >= 1

    def test_serving_matches_sequential_inference(self, micro_bundle):
        """The facade preserves the bit-identical serving guarantee."""
        frames = micro_bundle.val_dataset[0].frames()[:3]
        reference = micro_bundle.adascale.process_video(frames)
        with api.Server(micro_bundle, serving=ServingConfig(num_workers=1)) as server:
            report = server.serve_load(streams=1, frames_per_stream=3)
        assert list(report.streams[0].scales_used) == reference.scales_used[:3]

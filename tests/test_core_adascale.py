"""Tests for the AdaScale detector (Algorithm 1), regressor training and the pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaScaleDetector, AdaScalePipeline, RegressorTrainer, ScaleRegressor
from repro.core.pipeline import METHODS, merge_detections


class TestRegressorTraining:
    def test_training_reduces_mse(self, micro_bundle):
        """Re-train a fresh regressor briefly and check the loss trends down."""
        detector = micro_bundle.ms_detector
        regressor = ScaleRegressor(detector.feature_channels, micro_bundle.config.regressor, seed=5)
        trainer = RegressorTrainer(
            detector,
            regressor,
            micro_bundle.config.adascale,
            micro_bundle.config.regressor,
            np.random.default_rng(5),
        )
        summary = trainer.fit(micro_bundle.train_dataset, micro_bundle.labels, iterations=50, log_every=0)
        first = float(np.mean(summary.loss_history[:10]))
        last = float(np.mean(summary.loss_history[-10:]))
        assert last <= first * 1.2  # allow noise, but no blow-up
        assert len(summary.loss_history) == 50

    def test_detector_weights_untouched_by_regressor_training(self, micro_bundle):
        detector = micro_bundle.ms_detector
        before = {name: value.copy() for name, value in detector.state_dict().items()}
        regressor = ScaleRegressor(detector.feature_channels, micro_bundle.config.regressor, seed=6)
        trainer = RegressorTrainer(
            detector,
            regressor,
            micro_bundle.config.adascale,
            micro_bundle.config.regressor,
            np.random.default_rng(6),
        )
        trainer.fit(micro_bundle.train_dataset, micro_bundle.labels, iterations=10, log_every=0)
        after = detector.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_empty_labels_rejected(self, micro_bundle):
        from repro.core.optimal_scale import ScaleLabels

        regressor = ScaleRegressor(micro_bundle.ms_detector.feature_channels, seed=0)
        trainer = RegressorTrainer(
            micro_bundle.ms_detector, regressor, micro_bundle.config.adascale
        )
        with pytest.raises(ValueError):
            trainer.fit(micro_bundle.train_dataset, ScaleLabels(), iterations=5)

    def test_invalid_iterations_rejected(self, micro_bundle):
        regressor = ScaleRegressor(micro_bundle.ms_detector.feature_channels, seed=0)
        trainer = RegressorTrainer(
            micro_bundle.ms_detector, regressor, micro_bundle.config.adascale
        )
        with pytest.raises(ValueError):
            trainer.fit(micro_bundle.train_dataset, micro_bundle.labels, iterations=0)


class TestAdaScaleDetector:
    def test_detect_frame_outputs(self, micro_bundle, micro_frame):
        adascale = micro_bundle.adascale
        output = adascale.detect_frame(micro_frame.image, micro_bundle.config.adascale.max_scale)
        config = micro_bundle.config.adascale
        assert output.scale_used == config.max_scale
        assert config.min_scale <= output.next_scale <= config.max_scale
        assert output.runtime_s > 0.0
        assert np.isfinite(output.regressed_target)

    def test_process_video_follows_algorithm1(self, micro_bundle):
        """First frame at max scale; every subsequent scale comes from the previous
        frame's regression, clipped to [S_min, S_max]."""
        adascale = micro_bundle.adascale
        snippet = micro_bundle.val_dataset[0]
        result = adascale.process_video(snippet.frames())
        config = micro_bundle.config.adascale
        assert result.scales_used[0] == config.max_scale
        for index in range(1, len(result)):
            assert result.scales_used[index] == result.outputs[index - 1].next_scale
            assert config.min_scale <= result.scales_used[index] <= config.max_scale

    def test_process_video_custom_initial_scale(self, micro_bundle):
        adascale = micro_bundle.adascale
        snippet = micro_bundle.val_dataset[0]
        result = adascale.process_video(snippet.frames(), initial_scale=32)
        assert result.scales_used[0] == 32

    def test_video_result_statistics(self, micro_bundle):
        adascale = micro_bundle.adascale
        snippet = micro_bundle.val_dataset[0]
        result = adascale.process_video(snippet.frames())
        assert len(result) == len(snippet)
        assert result.mean_scale > 0
        assert result.mean_runtime_ms > 0
        assert result.snippet_id == snippet.snippet_id

    def test_to_records_requires_matching_length(self, micro_bundle):
        adascale = micro_bundle.adascale
        snippet = micro_bundle.val_dataset[0]
        result = adascale.process_video(snippet.frames())
        with pytest.raises(ValueError):
            result.to_records(snippet.frames()[:-1])

    def test_records_preserve_ground_truth(self, micro_bundle):
        adascale = micro_bundle.adascale
        snippet = micro_bundle.val_dataset[0]
        frames = snippet.frames()
        records = adascale.process_video(frames).to_records(frames)
        for frame, record in zip(frames, records):
            np.testing.assert_array_equal(record.gt_boxes, frame.boxes)
            assert record.frame_id == (frame.snippet_id, frame.frame_index)

    def test_overhead_estimate_is_small_fraction(self, micro_bundle):
        adascale = micro_bundle.adascale
        overhead = adascale.overhead_ms(64, 80, reference_ms=10.0)
        assert 0.0 < overhead < 3.0


class TestMergeDetections:
    def test_empty_input(self):
        boxes, scores, classes = merge_detections([], 0.3, 10)
        assert boxes.shape == (0, 4)

    def test_merging_deduplicates_across_scales(self, micro_bundle, micro_frame):
        detector = micro_bundle.ms_detector
        results = [
            detector.detect(micro_frame.image, target_scale=s, max_long_side=240)
            for s in micro_bundle.config.adascale.scales[:2]
        ]
        boxes, scores, classes = merge_detections(results, 0.3, 50)
        total_before = sum(len(r) for r in results)
        assert boxes.shape[0] <= total_before
        assert boxes.shape[0] == scores.shape[0] == classes.shape[0]

    def test_max_detections_cap(self, micro_bundle, micro_frame):
        detector = micro_bundle.ms_detector
        results = [
            detector.detect(micro_frame.image, target_scale=s, max_long_side=240)
            for s in micro_bundle.config.adascale.scales
        ]
        boxes, _, _ = merge_detections(results, 0.9, 3)
        assert boxes.shape[0] <= 3


class TestPipelineAndBundle:
    def test_bundle_contains_all_artifacts(self, micro_bundle):
        assert micro_bundle.ss_detector is not micro_bundle.ms_detector
        assert micro_bundle.regressor is not None
        assert len(micro_bundle.labels) > 0
        assert micro_bundle.class_names == micro_bundle.val_dataset.class_names

    def test_evaluate_method_rejects_unknown(self, micro_bundle):
        with pytest.raises(KeyError):
            micro_bundle.evaluate_method("MS/Bogus")

    def test_methods_constant_matches_paper(self):
        assert METHODS == ("SS/SS", "MS/SS", "MS/MS", "MS/Random", "MS/AdaScale")

    def test_fixed_scale_method_uses_max_scale_everywhere(self, micro_bundle):
        result = micro_bundle.evaluate_method("MS/SS")
        config = micro_bundle.config.adascale
        used = {scale for trace in result.scale_trace.values() for scale in trace}
        assert used == {config.max_scale}

    def test_adascale_method_adapts_scale(self, micro_bundle):
        result = micro_bundle.evaluate_method("MS/AdaScale")
        assert result.records
        assert result.mean_scale <= micro_bundle.config.adascale.max_scale
        assert result.runtime.count == micro_bundle.val_dataset.num_frames

    def test_random_method_spans_multiple_scales(self, micro_bundle):
        result = micro_bundle.evaluate_method("MS/Random")
        used = {scale for trace in result.scale_trace.values() for scale in trace}
        assert len(used) > 1

    def test_multi_scale_method_counts_all_scales_in_runtime(self, micro_bundle):
        ms_ss = micro_bundle.evaluate_method("MS/SS")
        ms_ms = micro_bundle.evaluate_method("MS/MS")
        # MS/MS runs the detector once per scale, so it must be slower per frame.
        assert ms_ms.runtime.mean_ms > ms_ss.runtime.mean_ms

    def test_scale_distribution_normalised(self, micro_bundle):
        result = micro_bundle.evaluate_method("MS/AdaScale")
        distribution = result.scale_distribution(bins=micro_bundle.config.adascale.regressor_scales)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_eval_results_have_all_classes(self, micro_bundle):
        result = micro_bundle.evaluate_method("MS/SS")
        assert set(result.eval.per_class_ap) == set(micro_bundle.class_names)

    def test_bundle_save_and_load_roundtrip(self, micro_bundle, micro_config, tmp_path, micro_frame):
        from repro.core.pipeline import ExperimentBundle

        micro_bundle.save(tmp_path / "bundle")
        restored = ExperimentBundle.load(tmp_path / "bundle", micro_config)
        assert len(restored.labels) == len(micro_bundle.labels)
        original = micro_bundle.ms_detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        reloaded = restored.ms_detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        assert len(original) == len(reloaded)
        if len(original):
            np.testing.assert_allclose(original.boxes, reloaded.boxes, rtol=1e-5)
        assert restored.regressor.predict(original.features) == pytest.approx(
            micro_bundle.regressor.predict(original.features), rel=1e-5
        )

    def test_pipeline_single_scale_training_reuses_base(self, micro_config, micro_bundle):
        """With a single-scale S_train the MS detector equals the SS detector."""
        config = micro_config.with_(
            training=micro_config.training.with_(
                train_scales=(micro_config.adascale.max_scale,), iterations=5
            )
        )
        pipeline = AdaScalePipeline(config)
        ms_detector = pipeline.finetune_multiscale(micro_bundle.ss_detector, micro_bundle.train_dataset)
        for name, value in micro_bundle.ss_detector.state_dict().items():
            np.testing.assert_array_equal(value, ms_detector.state_dict()[name])

    def test_pipeline_validates_config(self, micro_config):
        bad = micro_config.with_(detector=micro_config.detector.with_(num_classes=99))
        with pytest.raises(ValueError):
            AdaScalePipeline(bad)

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.presets import EXPERIMENT_PRESETS, ExperimentPreset


def _point_tiny_at_micro(monkeypatch, micro_config, dataset_cls):
    """Re-register the 'tiny' preset to the micro configuration (auto-restored)."""
    preset = ExperimentPreset(
        name="tiny",
        config_factory=lambda seed=0: micro_config,
        dataset_cls=dataset_cls,
        description="micro test override",
    )
    monkeypatch.setitem(EXPERIMENT_PRESETS._entries, "tiny", preset)
    return preset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.preset == "tiny"
        assert args.seed == 0
        assert args.methods == ["SS/SS", "MS/SS", "MS/AdaScale"]

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "huge", "labels"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--methods", "MS/Bogus"])

    def test_preset_choices_come_from_registry(self):
        parser = build_parser()
        for name in EXPERIMENT_PRESETS.names():
            args = parser.parse_args(["--preset", name, "labels"])
            assert args.preset == name

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.streams == 4
        assert args.pattern == "poisson"
        assert args.policy is None


class TestRegistries:
    def test_known_presets_registered(self):
        assert set(EXPERIMENT_PRESETS.names()) >= {"tiny", "vid", "ytbb"}

    def test_datasets_registered(self):
        from repro.data.mini_ytbb import MiniYTBB
        from repro.data.synthetic_vid import SyntheticVID
        from repro.presets import DATASETS

        assert DATASETS.get("synthetic-vid") is SyntheticVID
        assert DATASETS.get("mini-ytbb") is MiniYTBB

    def test_registry_rejects_duplicate_without_override(self):
        preset = EXPERIMENT_PRESETS.get("tiny")
        with pytest.raises(KeyError):
            EXPERIMENT_PRESETS.register("tiny", preset)
        EXPERIMENT_PRESETS.register("tiny", preset, override=True)


class TestCommands:
    def test_evaluate_from_saved_bundle(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        """`evaluate --bundle` loads a saved bundle instead of retraining."""
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        # Point the 'tiny' preset at the micro configuration so load shapes match.
        _point_tiny_at_micro(monkeypatch, micro_config, type(micro_bundle.train_dataset))
        exit_code = main(["evaluate", "--bundle", str(bundle_dir), "--methods", "MS/SS"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "MS/SS" in captured.out
        assert "mAP" in captured.out
        assert "p95" in captured.out

    def test_labels_command(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config, type(micro_bundle.train_dataset))
        monkeypatch.setattr(
            cli, "_build_or_load", lambda args: cli.ExperimentBundle.load(bundle_dir, micro_config)
        )
        exit_code = main(["labels"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "optimal scale" in captured.out

    def test_serve_command(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        """`serve --bundle` runs a load-generated session and prints telemetry."""
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config, type(micro_bundle.train_dataset))
        exit_code = main(
            [
                "serve",
                "--bundle",
                str(bundle_dir),
                "--streams",
                "2",
                "--frames",
                "2",
                "--workers",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "p95" in captured.out
        assert "throughput" in captured.out
        assert "Adaptive-scale traces" in captured.out


class TestBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.only is None and not args.fast and not args.compare

    def test_list_prints_benchmarks(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "serving_throughput" in out
        assert "table1_vid" in out

    def test_unknown_benchmark_rejected(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text("def test_noop():\n    pass\n")
        with pytest.raises(SystemExit):
            main(["bench", "--bench-dir", str(bench_dir), "--only", "nonexistent"])

    def test_run_invokes_pytest_and_summarises(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli
        from repro.profiling import write_bench_json

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text("def test_noop():\n    pass\n")
        results_dir = tmp_path / "results"
        invoked = {}

        def fake_pytest(paths, extra):
            invoked["paths"] = paths
            invoked["extra"] = extra
            write_bench_json(results_dir, "demo", data={"fps": 1.0}, fast=True)
            return 0

        monkeypatch.setattr(cli, "_invoke_pytest", fake_pytest)
        code = main(
            [
                "bench",
                "--fast",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(results_dir),
            ]
        )
        assert code == 0
        assert invoked["paths"] == [str(bench_dir / "test_demo.py")]
        assert "--benchmark-disable" in invoked["extra"]
        out = capsys.readouterr().out
        assert "BENCH_demo.json" in out
        assert "ok" in out

    def test_run_flags_missing_artefacts(self, tmp_path, monkeypatch):
        import repro.cli as cli

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text("def test_noop():\n    pass\n")
        monkeypatch.setattr(cli, "_invoke_pytest", lambda paths, extra: 0)
        code = main(
            [
                "bench",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(tmp_path / "empty"),
            ]
        )
        assert code == 1

    def test_compare_gates_against_baselines(self, tmp_path, capsys):
        from repro.profiling import write_bench_json

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        write_bench_json(baselines, "demo", data={"fps": 100.0})
        write_bench_json(results, "demo", data={"fps": 90.0})
        code = main(
            [
                "bench",
                "--compare",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(results),
                "--baseline-dir",
                str(baselines),
            ]
        )
        assert code == 0
        assert "all regression gates passed" in capsys.readouterr().out

        write_bench_json(results, "demo", data={"fps": 2.0})
        code = main(
            [
                "bench",
                "--compare",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(results),
                "--baseline-dir",
                str(baselines),
            ]
        )
        assert code == 1

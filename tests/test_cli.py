"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.preset == "tiny"
        assert args.seed == 0
        assert args.methods == ["SS/SS", "MS/SS", "MS/AdaScale"]

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "huge", "labels"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--methods", "MS/Bogus"])


class TestCommands:
    def test_evaluate_from_saved_bundle(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        """`evaluate --bundle` loads a saved bundle instead of retraining."""
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        # Point the 'tiny' preset at the micro configuration so load shapes match.
        import repro.cli as cli

        monkeypatch.setitem(cli._PRESETS, "tiny", (lambda seed=0: micro_config, type(micro_bundle.train_dataset)))
        exit_code = main(["evaluate", "--bundle", str(bundle_dir), "--methods", "MS/SS"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "MS/SS" in captured.out
        assert "mAP" in captured.out

    def test_labels_command(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        monkeypatch.setitem(cli._PRESETS, "tiny", (lambda seed=0: micro_config, type(micro_bundle.train_dataset)))
        monkeypatch.setattr(
            cli, "_build_or_load", lambda args: cli.ExperimentBundle.load(bundle_dir, micro_config)
        )
        exit_code = main(["labels"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "optimal scale" in captured.out

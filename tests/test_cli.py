"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cli import build_parser, main
from repro.config import ExperimentConfig
from repro.configio import toml_supported
from repro.presets import EXPERIMENT_PRESETS, ExperimentPreset


def _point_tiny_at_micro(monkeypatch, micro_config):
    """Re-register the 'tiny' preset to the micro configuration (auto-restored)."""
    preset = ExperimentPreset(
        name="tiny",
        dataset=micro_config.dataset.name,
        spec=micro_config.to_dict(),
        description="micro test override",
    )
    monkeypatch.setitem(EXPERIMENT_PRESETS._entries, "tiny", preset)
    return preset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.preset == "tiny"
        assert args.seed is None  # None = keep the seeds the preset declares
        assert args.methods == ["SS/SS", "MS/SS", "MS/AdaScale"]

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "huge", "labels"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--methods", "MS/Bogus"])

    def test_preset_choices_come_from_registry(self):
        parser = build_parser()
        for name in EXPERIMENT_PRESETS.names():
            args = parser.parse_args(["--preset", name, "labels"])
            assert args.preset == name

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.streams == 4
        assert args.pattern == "poisson"
        assert args.policy is None
        assert args.telemetry is False
        assert args.telemetry_sample == 1.0
        assert args.span_log is None and args.export_trace is None

    def test_serve_and_cluster_share_telemetry_flags(self):
        """Flag parity: serve accepts the same tracing surface as cluster."""
        parser = build_parser()
        for command in ("serve", "cluster"):
            args = parser.parse_args(
                [
                    command,
                    "--telemetry",
                    "--telemetry-sample", "0.5",
                    "--span-log", "spans.jsonl",
                    "--export-trace", "trace.json",
                ]
            )
            assert args.telemetry is True
            assert args.telemetry_sample == 0.5
            assert str(args.span_log) == "spans.jsonl"
            assert str(args.export_trace) == "trace.json"

    def test_set_is_repeatable(self):
        args = build_parser().parse_args(
            ["run", "--set", "serving.num_workers=3", "--set", "seed=4"]
        )
        assert args.overrides == ["serving.num_workers=3", "seed=4"]

    def test_config_flag_accepted_by_every_experiment_command(self):
        parser = build_parser()
        for command in ("run", "train", "evaluate", "labels", "serve", "config"):
            extra = ["--output", "x"] if command == "train" else []
            args = parser.parse_args([command, "--config", "exp.toml", *extra])
            assert str(args.config) == "exp.toml"


class TestRegistries:
    def test_known_presets_registered(self):
        assert set(EXPERIMENT_PRESETS.names()) >= {"tiny", "vid", "ytbb"}

    def test_datasets_registered(self):
        from repro.data.mini_ytbb import MiniYTBB
        from repro.data.synthetic_vid import SyntheticVID
        from repro.presets import DATASETS

        assert DATASETS.get("synthetic-vid") is SyntheticVID
        assert DATASETS.get("mini-ytbb") is MiniYTBB

    def test_registry_rejects_duplicate_without_override(self):
        preset = EXPERIMENT_PRESETS.get("tiny")
        with pytest.raises(KeyError):
            EXPERIMENT_PRESETS.register("tiny", preset)
        # override=True outside an allow_override context is loud, not silent.
        with pytest.raises(RuntimeError, match="allow_override"):
            EXPERIMENT_PRESETS.register("tiny", preset, override=True)
        with EXPERIMENT_PRESETS.allow_override():
            EXPERIMENT_PRESETS.register("tiny", preset, override=True)

    def test_preset_dataset_resolves_through_registry(self):
        from repro.data.mini_ytbb import MiniYTBB

        assert EXPERIMENT_PRESETS.get("ytbb").dataset_cls is MiniYTBB


class TestCommands:
    def test_evaluate_from_saved_bundle(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        """`evaluate --bundle` loads a saved bundle instead of retraining."""
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        # Point the 'tiny' preset at the micro configuration so load shapes match.
        _point_tiny_at_micro(monkeypatch, micro_config)
        exit_code = main(["evaluate", "--bundle", str(bundle_dir), "--methods", "MS/SS"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "MS/SS" in captured.out
        assert "mAP" in captured.out
        assert "p95" in captured.out

    def test_labels_command(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config)
        monkeypatch.setattr(
            cli, "_pipeline", lambda args: api.Pipeline.from_bundle(bundle_dir, micro_config)
        )
        exit_code = main(["labels"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "optimal scale" in captured.out

    def test_serve_command(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        """`serve --bundle` runs a load-generated session and prints telemetry."""
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config)
        exit_code = main(
            [
                "serve",
                "--bundle",
                str(bundle_dir),
                "--streams",
                "2",
                "--frames",
                "2",
                "--workers",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "p95" in captured.out
        assert "throughput" in captured.out
        assert "Adaptive-scale traces" in captured.out

    def test_serve_traced_writes_span_log_and_chrome_trace(
        self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch
    ):
        """`serve --span-log/--export-trace` produce loadable artefacts."""
        from repro.observability import load_span_log, validate_chrome_trace

        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config)
        span_log = tmp_path / "spans.jsonl"
        chrome = tmp_path / "trace.json"
        exit_code = main(
            [
                "serve",
                "--bundle", str(bundle_dir),
                "--streams", "2",
                "--frames", "2",
                "--span-log", str(span_log),
                "--export-trace", str(chrome),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Wrote telemetry span log" in captured.out
        assert "Wrote Chrome trace" in captured.out
        events = load_span_log(span_log)
        assert events
        assert "serving/complete_frame" in {event.name for event in events}
        assert validate_chrome_trace(json.loads(chrome.read_text())) == []

    def test_serve_accepts_set_overrides(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config)
        exit_code = main(
            [
                "serve",
                "--bundle",
                str(bundle_dir),
                "--streams",
                "2",
                "--frames",
                "2",
                "--set",
                "serving.backpressure=drop-oldest",
                "--set",
                "serving.batch_wait_ms=1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "policy drop-oldest" in captured.out


class TestObsCommand:
    def _fleet_span_log(self, path):
        """A hand-built process-mode span log: child spans + supervisor lane."""
        base = 1 << 32
        events = [
            {
                "name": "serving/service", "kind": "span",
                "trace_id": base + 1, "span_id": base + 2, "parent_id": base + 1,
                "start_s": 1.0, "duration_s": 0.02, "stream_id": 3,
                "frame_index": 0, "shard_id": 0,
                "attrs": {"os_pid": 4242, "generation": 0},
            },
            {
                "name": "serving/service", "kind": "span",
                "trace_id": 2 * base + 1, "span_id": 2 * base + 2,
                "parent_id": 2 * base + 1,
                "start_s": 2.0, "duration_s": 0.02, "stream_id": 3,
                "frame_index": 1, "shard_id": 0,
                "attrs": {"os_pid": 4301, "generation": 1},
            },
            {
                "name": "supervisor/crash", "kind": "span",
                "trace_id": 0, "span_id": 7, "parent_id": None,
                "start_s": 1.5, "duration_s": 0.1, "stream_id": -1,
                "frame_index": -1, "shard_id": 0,
                "attrs": {"fault": "kill-replica", "exitcode": -9},
            },
            {
                "name": "supervisor/respawn", "kind": "span",
                "trace_id": 0, "span_id": 8, "parent_id": None,
                "start_s": 1.5, "duration_s": 0.4, "stream_id": -1,
                "frame_index": -1, "shard_id": 0,
                "attrs": {"attempt": 1, "generation": 1},
            },
        ]
        path.write_text("".join(json.dumps(event) + "\n" for event in events))
        return path

    def test_summarize_shows_fleet_table_and_supervisor_timeline(
        self, tmp_path, capsys
    ):
        span_log = self._fleet_span_log(tmp_path / "spans.jsonl")
        exit_code = main(["obs", "summarize", str(span_log)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Process fleet" in captured.out
        assert "4242" in captured.out and "4301" in captured.out
        assert "Supervisor timeline" in captured.out
        assert "supervisor/crash" in captured.out
        assert "fault=kill-replica" in captured.out
        assert "supervisor/respawn" in captured.out

    def test_summarize_single_process_log_omits_fleet_sections(
        self, tmp_path, capsys
    ):
        span_log = tmp_path / "spans.jsonl"
        span_log.write_text(
            json.dumps(
                {
                    "name": "serving/admit", "kind": "instant",
                    "trace_id": 1, "span_id": 1, "parent_id": None,
                    "start_s": 0.0, "duration_s": 0.0, "stream_id": 0,
                    "frame_index": 0, "shard_id": 0, "attrs": {},
                }
            )
            + "\n"
        )
        exit_code = main(["obs", "summarize", str(span_log)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Process fleet" not in captured.out
        assert "Supervisor timeline" not in captured.out


class TestRunCommand:
    def test_run_with_config_file_and_set_matches_in_code_config(
        self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch
    ):
        """`repro run --config f --set a.b=c` == the equivalent in-code config."""
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config)
        config_path = tmp_path / "exp.json"
        json.dump({"serving": {"num_workers": 1}}, config_path.open("w"))

        exit_code = main(
            [
                "run",
                "--bundle",
                str(bundle_dir),
                "--config",
                str(config_path),
                "--set",
                "serving.max_batch_size=2",
                "--methods",
                "MS/SS",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0

        # The equivalently-constructed in-code config gives identical numbers.
        in_code = micro_config.with_(
            serving=micro_config.serving.with_(num_workers=1, max_batch_size=2)
        )
        expected = api.Pipeline.from_bundle(bundle_dir, in_code).evaluate(["MS/SS"])
        row = expected["MS/SS"]
        # Detection outputs are deterministic (timings are wall-clock, so not).
        assert f"{100 * row.mean_ap:.1f}" in out
        assert f"| {row.mean_scale:.0f}" in out

    @pytest.mark.skipif(not toml_supported(), reason="no TOML reader on this interpreter")
    def test_run_with_toml_config(self, micro_bundle, micro_config, tmp_path, capsys, monkeypatch):
        bundle_dir = tmp_path / "bundle"
        micro_bundle.save(bundle_dir)
        _point_tiny_at_micro(monkeypatch, micro_config)
        config_path = tmp_path / "exp.toml"
        micro_config.save(config_path)
        exit_code = main(
            ["run", "--bundle", str(bundle_dir), "--config", str(config_path), "--methods", "MS/SS"]
        )
        assert exit_code == 0
        assert "MS/SS" in capsys.readouterr().out

    def test_run_rejects_bad_override(self, capsys):
        with pytest.raises(SystemExit, match="config error"):
            main(["run", "--set", "serving.bogus_field=1"])

    def test_run_rejects_type_mismatch(self):
        with pytest.raises(SystemExit, match="config error"):
            main(["run", "--set", "serving.num_workers=many"])

    def test_missing_config_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="config error"):
            main(["run", "--config", str(tmp_path / "does-not-exist.toml")])

    def test_dataset_override_changes_dataset_class(self, monkeypatch):
        """--set dataset.name picks the dataset via the registry, not the preset."""
        import repro.cli as cli
        from repro.data.mini_ytbb import MiniYTBB

        captured = {}

        def fake_from_config(config, dataset=None, **kwargs):
            captured["dataset"] = dataset
            raise SystemExit(0)  # stop before training

        monkeypatch.setattr(cli.api.Pipeline, "from_config", fake_from_config)
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--preset",
                    "tiny",
                    "--set",
                    "dataset.name=mini-ytbb",
                    "--set",
                    "dataset.num_classes=4",
                ]
            )
        assert captured["dataset"] is MiniYTBB


class TestConfigCommand:
    def test_check_passes_for_registered_presets(self, capsys):
        assert main(["config", "--check"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "vid" in out and "ytbb" in out
        assert "all presets round-trip losslessly" in out

    def test_show_toml(self, capsys):
        assert main(["config", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "[dataset]" in out and "[serving]" in out

    def test_show_json_respects_set(self, capsys):
        assert main(["config", "--format", "json", "--set", "serving.num_workers=7"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["serving"]["num_workers"] == 7

    def test_save_round_trips(self, tmp_path, capsys):
        path = tmp_path / "resolved.json"
        assert main(["config", "--preset", "vid", "--save", str(path)]) == 0
        loaded = ExperimentConfig.load(path)
        assert loaded == EXPERIMENT_PRESETS.get("vid").build_config(seed=None)

    def test_save_bad_suffix_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="repro config: error"):
            main(["config", "--save", str(tmp_path / "resolved.yaml")])

    def test_check_flags_drift(self, capsys, monkeypatch):
        broken = ExperimentPreset(
            name="broken", dataset="synthetic-vid", spec={"detector": {"num_classes": 99}}
        )
        monkeypatch.setitem(EXPERIMENT_PRESETS._entries, "broken", broken)
        assert main(["config", "--check"]) == 1
        assert "broken" in capsys.readouterr().out


class TestBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.only is None and not args.fast and not args.compare

    def test_list_prints_benchmarks(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "serving_throughput" in out
        assert "table1_vid" in out

    def test_unknown_benchmark_rejected(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text("def test_noop():\n    pass\n")
        with pytest.raises(SystemExit):
            main(["bench", "--bench-dir", str(bench_dir), "--only", "nonexistent"])

    def test_run_invokes_pytest_and_summarises(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli
        from repro.profiling import write_bench_json

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text("def test_noop():\n    pass\n")
        results_dir = tmp_path / "results"
        invoked = {}

        def fake_pytest(paths, extra):
            invoked["paths"] = paths
            invoked["extra"] = extra
            write_bench_json(results_dir, "demo", data={"fps": 1.0}, fast=True)
            return 0

        monkeypatch.setattr(cli, "_invoke_pytest", fake_pytest)
        code = main(
            [
                "bench",
                "--fast",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(results_dir),
            ]
        )
        assert code == 0
        assert invoked["paths"] == [str(bench_dir / "test_demo.py")]
        assert "--benchmark-disable" in invoked["extra"]
        out = capsys.readouterr().out
        assert "BENCH_demo.json" in out
        assert "ok" in out

    def test_run_flags_missing_artefacts(self, tmp_path, monkeypatch):
        import repro.cli as cli

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text("def test_noop():\n    pass\n")
        monkeypatch.setattr(cli, "_invoke_pytest", lambda paths, extra: 0)
        code = main(
            [
                "bench",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(tmp_path / "empty"),
            ]
        )
        assert code == 1

    def test_compare_gates_against_baselines(self, tmp_path, capsys):
        from repro.profiling import write_bench_json

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        write_bench_json(baselines, "demo", data={"fps": 100.0})
        write_bench_json(results, "demo", data={"fps": 90.0})
        code = main(
            [
                "bench",
                "--compare",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(results),
                "--baseline-dir",
                str(baselines),
            ]
        )
        assert code == 0
        assert "all regression gates passed" in capsys.readouterr().out

        write_bench_json(results, "demo", data={"fps": 2.0})
        code = main(
            [
                "bench",
                "--compare",
                "--bench-dir",
                str(bench_dir),
                "--results-dir",
                str(results),
                "--baseline-dir",
                str(baselines),
            ]
        )
        assert code == 1

"""Shared fixtures for the test suite.

Expensive artefacts (datasets, detectors, the end-to-end trained bundle) are
session-scoped so the several hundred tests stay fast: only one micro
training run happens per pytest session.
"""

from __future__ import annotations

import faulthandler
import os

import numpy as np
import pytest

# CI hang guard: with REPRO_TEST_TIMEOUT set (seconds), any test session still
# running at the deadline dumps every thread's stack and exits non-zero — a
# hung spawned replica process then fails fast with a traceback instead of
# eating the job's whole timeout budget silently.
_TIMEOUT_S = os.environ.get("REPRO_TEST_TIMEOUT")
if _TIMEOUT_S:
    faulthandler.enable()
    faulthandler.dump_traceback_later(float(_TIMEOUT_S), exit=True)

from repro.config import (
    AdaScaleConfig,
    DatasetConfig,
    DetectorConfig,
    ExperimentConfig,
    RegressorConfig,
    TrainingConfig,
)
from repro.core import AdaScalePipeline
from repro.data import SyntheticVID


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def micro_config() -> ExperimentConfig:
    """A micro experiment configuration used by integration tests."""
    dataset = DatasetConfig(
        num_classes=3,
        base_scale=64,
        aspect_ratio=1.25,
        num_train_snippets=4,
        num_val_snippets=2,
        frames_per_snippet=3,
        max_objects_per_frame=2,
        clutter=0.4,
        motion_blur=0.2,
        seed=7,
    )
    detector = DetectorConfig(
        num_classes=3,
        backbone_channels=(6, 12, 18),
        anchor_sizes=(10, 20, 40),
        rpn_pre_nms_top_n=80,
        rpn_post_nms_top_n=16,
        max_detections=15,
    )
    training = TrainingConfig(
        train_scales=(64, 48, 32),
        max_long_side=240,
        iterations=60,
        lr_decay_at=(45,),
        rpn_batch_size=16,
        roi_batch_size=16,
        seed=7,
    )
    regressor = RegressorConfig(iterations=60, lr_decay_at=(45,), seed=7)
    adascale = AdaScaleConfig(
        scales=(64, 48, 32),
        regressor_scales=(64, 48, 32, 24),
        max_long_side=240,
    )
    return ExperimentConfig(
        dataset=dataset,
        detector=detector,
        training=training,
        regressor=regressor,
        adascale=adascale,
        seed=7,
    )


@pytest.fixture(scope="session")
def micro_train_dataset(micro_config: ExperimentConfig) -> SyntheticVID:
    """Training split of the micro dataset."""
    return SyntheticVID(micro_config.dataset, split="train")


@pytest.fixture(scope="session")
def micro_val_dataset(micro_config: ExperimentConfig) -> SyntheticVID:
    """Validation split of the micro dataset."""
    return SyntheticVID(micro_config.dataset, split="val")


@pytest.fixture(scope="session")
def micro_bundle(micro_config: ExperimentConfig):
    """A fully trained (micro) experiment bundle shared by integration tests."""
    return AdaScalePipeline(micro_config).run()


@pytest.fixture(scope="session")
def micro_bundle_dir(micro_bundle, tmp_path_factory: pytest.TempPathFactory) -> str:
    """The micro bundle saved to disk — what spawned replica processes load."""
    directory = tmp_path_factory.mktemp("micro-bundle")
    micro_bundle.save(directory)
    return str(directory)


@pytest.fixture(scope="session")
def micro_frame(micro_train_dataset: SyntheticVID):
    """A single frame with at least one annotated object."""
    for snippet in micro_train_dataset:
        for frame in snippet:
            if frame.num_objects > 0:
                return frame
    raise RuntimeError("micro dataset produced no annotated frames")

"""Tests for PSRoI pooling, the RPN head, detection losses and the R-FCN detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig, TrainingConfig
from repro.detection import RFCNDetector, detection_loss
from repro.detection.losses import per_detection_losses
from repro.detection.psroi import PSRoIPool
from repro.detection.rfcn import build_backbone
from repro.detection.rpn import RPNHead


@pytest.fixture(scope="module")
def detector_config() -> DetectorConfig:
    return DetectorConfig(
        num_classes=3,
        backbone_channels=(4, 8, 16),
        anchor_sizes=(12, 24, 48),
        rpn_pre_nms_top_n=60,
        rpn_post_nms_top_n=12,
        max_detections=10,
    )


@pytest.fixture(scope="module")
def detector(detector_config) -> RFCNDetector:
    return RFCNDetector(detector_config, seed=0)


def naive_psroi(maps: np.ndarray, rois: np.ndarray, k: int, dim: int, scale: float) -> np.ndarray:
    """Reference loop implementation of PS-RoI average pooling."""
    num_rois = rois.shape[0]
    height, width = maps.shape[2:]
    out = np.zeros((num_rois, dim, k, k), dtype=np.float32)
    for roi_index, roi in enumerate(rois):
        x1, y1, x2, y2 = roi * scale
        roi_w, roi_h = max(x2 - x1, 1.0), max(y2 - y1, 1.0)
        bin_w, bin_h = roi_w / k, roi_h / k
        for i in range(k):
            for j in range(k):
                ys = int(np.clip(np.floor(y1 + i * bin_h), 0, height))
                ye = int(np.clip(np.ceil(y1 + (i + 1) * bin_h), 0, height))
                xs = int(np.clip(np.floor(x1 + j * bin_w), 0, width))
                xe = int(np.clip(np.ceil(x1 + (j + 1) * bin_w), 0, width))
                if ye <= ys or xe <= xs:
                    continue
                channel = (i * k + j) * dim
                out[roi_index, :, i, j] = maps[0, channel : channel + dim, ys:ye, xs:xe].mean(
                    axis=(1, 2)
                )
    return out


class TestPSRoIPool:
    def test_matches_naive_reference(self, rng):
        k, dim = 3, 5
        maps = rng.normal(size=(1, k * k * dim, 12, 16)).astype(np.float32)
        rois = np.array(
            [[0, 0, 40, 40], [10, 20, 90, 80], [50, 5, 120, 60], [0, 0, 127, 95]], dtype=np.float32
        )
        pool = PSRoIPool(k, dim, 1.0 / 8.0)
        out = pool.forward(maps, rois)
        ref = naive_psroi(maps, rois, k, dim, 1.0 / 8.0)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_gradient_matches_numeric(self, rng):
        k, dim = 2, 3
        maps = rng.normal(size=(1, k * k * dim, 6, 8)).astype(np.float32)
        rois = np.array([[0, 0, 30, 30], [10, 10, 60, 40]], dtype=np.float32)
        pool = PSRoIPool(k, dim, 1.0 / 8.0)
        out = pool.forward(maps, rois)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        grad_maps = pool.backward(grad_out)
        eps = 1e-2
        for index in [(0, 0, 2, 3), (0, 5, 1, 1), (0, 11, 4, 6)]:
            shifted = maps.copy()
            shifted[index] += eps
            numeric = float(((pool.forward(shifted, rois) - out) * grad_out).sum() / eps)
            assert grad_maps[index] == pytest.approx(numeric, rel=5e-2, abs=1e-3)

    def test_empty_roi_list(self, rng):
        pool = PSRoIPool(3, 4, 0.125)
        maps = rng.normal(size=(1, 36, 6, 6)).astype(np.float32)
        out = pool.forward(maps, np.zeros((0, 4), dtype=np.float32))
        assert out.shape == (0, 4, 3, 3)
        grad = pool.backward(np.zeros((0, 4, 3, 3), dtype=np.float32))
        assert grad.shape == maps.shape

    def test_roi_outside_map_gives_zeros(self, rng):
        pool = PSRoIPool(2, 2, 0.125)
        maps = rng.normal(size=(1, 8, 4, 4)).astype(np.float32)
        out = pool.forward(maps, np.array([[200, 200, 240, 240]], dtype=np.float32))
        np.testing.assert_array_equal(out, np.zeros_like(out))

    def test_channel_mismatch_raises(self, rng):
        pool = PSRoIPool(3, 4, 0.125)
        with pytest.raises(ValueError):
            pool.forward(rng.normal(size=(1, 10, 4, 4)).astype(np.float32), np.zeros((1, 4)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PSRoIPool(0, 4, 0.125)
        with pytest.raises(ValueError):
            PSRoIPool(3, 0, 0.125)
        with pytest.raises(ValueError):
            PSRoIPool(3, 4, 0.0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            PSRoIPool(2, 2, 0.5).backward(np.zeros((1, 2, 2, 2)))


class TestBackbone:
    def test_total_stride_is_eight(self, rng):
        backbone, channels = build_backbone((4, 8, 16), rng)
        out = backbone(rng.normal(size=(1, 3, 64, 80)).astype(np.float32))
        assert out.shape == (1, 16, 8, 10)
        assert channels == 16

    def test_empty_channels_rejected(self, rng):
        with pytest.raises(ValueError):
            build_backbone((), rng)


class TestRPNHead:
    def test_output_shapes(self, detector_config, rng):
        head = RPNHead(16, detector_config, rng)
        features = rng.normal(size=(1, 16, 8, 10)).astype(np.float32)
        out = head(features)
        num_anchors = 8 * 10 * 9
        assert out.objectness.shape == (num_anchors, 2)
        assert out.deltas.shape == (num_anchors, 4)
        assert out.anchors.shape == (num_anchors, 4)

    def test_layout_roundtrip(self, detector_config, rng):
        head = RPNHead(16, detector_config, rng)
        per_anchor = rng.normal(size=(6 * 7 * head.num_anchors, 2)).astype(np.float32)
        as_map = head._anchor_layout_to_map(per_anchor, 2, 6, 7)
        back = head._map_to_anchor_layout(as_map, 2)
        assert back.shape == (1, per_anchor.shape[0], 2)
        np.testing.assert_allclose(back[0], per_anchor)

    def test_layout_batched_matches_per_image(self, detector_config, rng):
        head = RPNHead(16, detector_config, rng)
        maps = rng.normal(size=(3, 2 * head.num_anchors, 6, 7)).astype(np.float32)
        batched = head._map_to_anchor_layout(maps, 2)
        for index in range(3):
            single = head._map_to_anchor_layout(maps[index : index + 1], 2)
            np.testing.assert_array_equal(batched[index], single[0])

    def test_backward_returns_feature_gradient(self, detector_config, rng):
        head = RPNHead(16, detector_config, rng)
        features = rng.normal(size=(1, 16, 6, 6)).astype(np.float32)
        out = head(features)
        grad = head.backward(np.ones_like(out.objectness), np.ones_like(out.deltas))
        assert grad.shape == features.shape
        assert np.isfinite(grad).all()

    def test_generate_proposals_within_image(self, detector_config, rng):
        head = RPNHead(16, detector_config, rng)
        features = rng.normal(size=(1, 16, 8, 10)).astype(np.float32)
        out = head(features)
        proposals, scores = head.generate_proposals(out, image_height=64, image_width=80)
        assert proposals.shape[0] <= detector_config.rpn_post_nms_top_n
        assert proposals.shape[0] == scores.shape[0]
        if proposals.shape[0]:
            assert proposals[:, 0].min() >= 0 and proposals[:, 1].min() >= 0
            assert proposals[:, 2].max() <= 80 and proposals[:, 3].max() <= 64

    def test_proposals_sorted_by_score_after_nms(self, detector_config, rng):
        head = RPNHead(16, detector_config, rng)
        features = rng.normal(size=(1, 16, 8, 10)).astype(np.float32)
        out = head(features)
        _, scores = head.generate_proposals(out, 64, 80)
        assert np.all(np.diff(scores) <= 1e-6)


class TestDetectionLoss:
    def test_background_only_has_no_regression(self, rng):
        logits = rng.normal(size=(4, 4)).astype(np.float32)
        labels = np.zeros(4, dtype=np.int64)
        deltas = rng.normal(size=(4, 4)).astype(np.float32)
        targets = np.zeros((4, 4), dtype=np.float32)
        result = detection_loss(logits, labels, deltas, targets)
        assert result.reg_loss == 0.0
        np.testing.assert_array_equal(result.grad_deltas, np.zeros((4, 4)))

    def test_lambda_scales_regression_gradient(self, rng):
        logits = rng.normal(size=(2, 4)).astype(np.float32)
        labels = np.array([1, 2])
        deltas = rng.normal(size=(2, 4)).astype(np.float32)
        targets = np.zeros((2, 4), dtype=np.float32)
        weak = detection_loss(logits, labels, deltas, targets, reg_weight=1.0)
        strong = detection_loss(logits, labels, deltas, targets, reg_weight=2.0)
        np.testing.assert_allclose(strong.grad_deltas, 2 * weak.grad_deltas, rtol=1e-5)
        assert strong.num_foreground == 2

    def test_per_sample_includes_both_terms(self):
        logits = np.array([[0.0, 5.0]], dtype=np.float32)
        labels = np.array([1])
        deltas = np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        targets = np.zeros((1, 4), dtype=np.float32)
        result = detection_loss(logits, labels, deltas, targets)
        assert result.per_sample[0] > 0.4  # includes the 0.5 quadratic smooth-L1 term

    def test_empty_batch(self):
        result = detection_loss(
            np.zeros((0, 3), np.float32), np.zeros(0, np.int64), np.zeros((0, 4)), np.zeros((0, 4))
        )
        assert result.total == 0.0

    def test_sample_weights_exclude_rows(self, rng):
        logits = rng.normal(size=(3, 3)).astype(np.float32)
        labels = np.array([1, 1, 0])
        deltas = rng.normal(size=(3, 4)).astype(np.float32)
        targets = np.zeros((3, 4), dtype=np.float32)
        weights = np.array([1.0, 0.0, 1.0], dtype=np.float32)
        result = detection_loss(logits, labels, deltas, targets, sample_weights=weights)
        np.testing.assert_array_equal(result.grad_logits[1], np.zeros(3))
        np.testing.assert_array_equal(result.grad_deltas[1], np.zeros(4))


class TestPerDetectionLosses:
    def test_foreground_assignment_follows_half_iou(self):
        probs = np.array([[0.1, 0.9, 0.0], [0.8, 0.1, 0.1]], dtype=np.float32)
        boxes = np.array([[0, 0, 10, 10], [100, 100, 110, 110]], dtype=np.float32)
        gt_boxes = np.array([[0, 0, 10, 10]], dtype=np.float32)
        gt_labels = np.array([0])
        result = per_detection_losses(probs, boxes, gt_boxes, gt_labels)
        assert result.is_foreground.tolist() == [True, False]
        assert result.num_foreground == 1

    def test_confident_correct_prediction_has_low_loss(self):
        probs = np.array([[0.01, 0.98, 0.01]], dtype=np.float32)
        boxes = np.array([[0, 0, 10, 10]], dtype=np.float32)
        gt_boxes = boxes.copy()
        result = per_detection_losses(probs, boxes, gt_boxes, np.array([0]))
        assert result.losses[0] < 0.05

    def test_wrong_class_increases_loss(self):
        right = per_detection_losses(
            np.array([[0.0, 0.9, 0.1]], dtype=np.float32),
            np.array([[0, 0, 10, 10]], dtype=np.float32),
            np.array([[0, 0, 10, 10]], dtype=np.float32),
            np.array([0]),
        )
        wrong = per_detection_losses(
            np.array([[0.0, 0.1, 0.9]], dtype=np.float32),
            np.array([[0, 0, 10, 10]], dtype=np.float32),
            np.array([[0, 0, 10, 10]], dtype=np.float32),
            np.array([0]),
        )
        assert wrong.losses[0] > right.losses[0]

    def test_poor_localisation_increases_loss(self):
        probs = np.array([[0.0, 1.0]], dtype=np.float32)
        aligned = per_detection_losses(
            probs, np.array([[0, 0, 10, 10]], np.float32), np.array([[0, 0, 10, 10]], np.float32), np.array([0])
        )
        shifted = per_detection_losses(
            probs, np.array([[2, 2, 12, 12]], np.float32), np.array([[0, 0, 10, 10]], np.float32), np.array([0])
        )
        assert shifted.losses[0] > aligned.losses[0]

    def test_background_box_uses_background_class_loss(self):
        probs = np.array([[0.9, 0.05, 0.05]], dtype=np.float32)
        boxes = np.array([[200, 200, 210, 210]], dtype=np.float32)
        gt_boxes = np.array([[0, 0, 10, 10]], dtype=np.float32)
        result = per_detection_losses(probs, boxes, gt_boxes, np.array([1]))
        assert not result.is_foreground[0]
        assert result.losses[0] == pytest.approx(-np.log(0.9), rel=1e-4)

    def test_empty_detections(self):
        result = per_detection_losses(
            np.zeros((0, 3)), np.zeros((0, 4)), np.zeros((1, 4)), np.array([0])
        )
        assert result.losses.shape == (0,)

    def test_mismatched_probs_and_boxes_raise(self):
        with pytest.raises(ValueError):
            per_detection_losses(np.zeros((2, 3)), np.zeros((1, 4)), np.zeros((1, 4)), np.array([0]))


class TestRFCNDetector:
    def test_detect_returns_consistent_shapes(self, detector, micro_frame):
        result = detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        count = len(result)
        assert result.boxes.shape == (count, 4)
        assert result.scores.shape == (count,)
        assert result.class_ids.shape == (count,)
        assert result.probs.shape == (count, detector.config.num_classes + 1)
        assert result.features.ndim == 4

    def test_detect_boxes_in_original_coordinates(self, detector, micro_frame):
        result = detector.detect(micro_frame.image, target_scale=32, max_long_side=240)
        if len(result):
            assert result.boxes[:, 2].max() <= micro_frame.width + 1e-3
            assert result.boxes[:, 3].max() <= micro_frame.height + 1e-3

    def test_detect_class_ids_within_range(self, detector, micro_frame):
        result = detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        if len(result):
            assert result.class_ids.min() >= 0
            assert result.class_ids.max() < detector.config.num_classes

    def test_smaller_scale_produces_smaller_feature_map(self, detector, micro_frame):
        large = detector.detect(micro_frame.image, target_scale=64, max_long_side=240)
        small = detector.detect(micro_frame.image, target_scale=32, max_long_side=240)
        assert small.features.shape[2] < large.features.shape[2]

    def test_scale_factor_reported(self, detector, micro_frame):
        result = detector.detect(micro_frame.image, target_scale=32, max_long_side=240)
        assert result.scale_factor == pytest.approx(32 / min(micro_frame.image.shape[:2]), rel=0.05)

    def test_runtime_recorded(self, detector, micro_frame):
        result = detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        assert result.runtime_s > 0.0

    def test_top_limits_detections(self, detector, micro_frame):
        result = detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        top = result.top(2)
        assert len(top) <= 2
        if len(result) >= 2:
            assert top.scores[0] >= top.scores[-1]

    def test_as_detections_conversion(self, detector, micro_frame):
        result = detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        detections = result.as_detections()
        assert len(detections) == len(result)
        if detections:
            assert detections[0].box.shape == (4,)

    def test_detect_from_features_matches_detect(self, detector, micro_frame):
        """detect() must be equivalent to extract_features + detect_from_features."""
        from repro.data.transforms import image_to_chw, normalize_image, resize_image

        full = detector.detect(micro_frame.image, target_scale=48, max_long_side=240)
        resized = resize_image(micro_frame.image, 48, 240)
        features = detector.extract_features(image_to_chw(normalize_image(resized.image)))
        manual = detector.detect_from_features(
            features,
            working_shape=resized.image.shape[:2],
            scale_factor=resized.scale_factor,
            image_size=micro_frame.image.shape[:2],
        )
        assert len(full) == len(manual)
        if len(full):
            np.testing.assert_allclose(full.boxes, manual.boxes, rtol=1e-4, atol=1e-3)
            np.testing.assert_allclose(full.scores, manual.scores, rtol=1e-4)

    def test_estimate_flops_increases_with_resolution(self, detector):
        assert detector.estimate_flops(128, 160) > detector.estimate_flops(64, 80)

    def test_estimate_flops_roughly_quadratic(self, detector):
        ratio = detector.estimate_flops(128, 128) / detector.estimate_flops(64, 64)
        assert 3.0 < ratio < 5.0

    def test_train_step_accumulates_gradients(self, detector_config, micro_frame, rng):
        detector = RFCNDetector(detector_config, seed=1)
        train_config = TrainingConfig(train_scales=(64,), rpn_batch_size=8, roi_batch_size=8)
        detector.zero_grad()
        losses = detector.train_step(
            micro_frame.image, micro_frame.boxes, micro_frame.labels, train_config, rng
        )
        assert set(losses) >= {"rpn_cls", "rpn_reg", "head_cls", "head_reg", "total"}
        grad_norm = sum(float(np.abs(p.grad).sum()) for p in detector.parameters())
        assert grad_norm > 0.0

    def test_train_step_handles_empty_ground_truth(self, detector_config, micro_frame, rng):
        detector = RFCNDetector(detector_config, seed=2)
        train_config = TrainingConfig(train_scales=(64,), rpn_batch_size=8, roi_batch_size=8)
        losses = detector.train_step(
            micro_frame.image,
            np.zeros((0, 4), dtype=np.float32),
            np.zeros((0,), dtype=np.int64),
            train_config,
            rng,
        )
        assert np.isfinite(losses["total"])

    def test_state_dict_roundtrip_preserves_detections(self, detector_config, micro_frame):
        source = RFCNDetector(detector_config, seed=3)
        clone = RFCNDetector(detector_config, seed=4)
        clone.load_state_dict(source.state_dict())
        a = source.detect(micro_frame.image, target_scale=48, max_long_side=240)
        b = clone.detect(micro_frame.image, target_scale=48, max_long_side=240)
        assert len(a) == len(b)
        if len(a):
            np.testing.assert_allclose(a.boxes, b.boxes, rtol=1e-5)


class TestInferenceDtype:
    """The configurable PS-RoI integral dtype (float64 default, float32 fast path)."""

    def test_default_is_float64(self):
        detector = RFCNDetector(DetectorConfig(), seed=0)
        assert detector.cls_pool.integral_dtype == np.dtype(np.float64)
        assert detector.bbox_pool.integral_dtype == np.dtype(np.float64)

    def test_invalid_dtype_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            RFCNDetector(DetectorConfig(inference_dtype="float16"), seed=0)
        with pytest.raises(ValueError):
            PSRoIPool(3, 4, 0.125, integral_dtype=np.int32)

    def test_float32_detection_matches_float64_within_tolerance(self):
        config = DetectorConfig()
        detector64 = RFCNDetector(config, seed=3)
        detector32 = detector64.with_config(config.with_(inference_dtype="float32"))
        rng = np.random.default_rng(11)
        image = rng.random((96, 120, 3)).astype(np.float32)

        result64 = detector64.detect(image, target_scale=96, max_long_side=426)
        result32 = detector32.detect(image, target_scale=96, max_long_side=426)

        # Same detections (the dtype only perturbs pooled bin sums slightly)...
        assert len(result32) == len(result64)
        np.testing.assert_array_equal(result32.class_ids, result64.class_ids)
        np.testing.assert_allclose(result32.boxes, result64.boxes, rtol=1e-3, atol=1e-2)
        np.testing.assert_allclose(result32.scores, result64.scores, rtol=1e-3, atol=1e-4)
        # ...but not (necessarily) bit-identical: float32 is the speed knob,
        # float64 stays the equivalence default.
        assert result64.features.dtype == np.float32

    def test_psroi_float32_close_to_float64(self):
        rng = np.random.default_rng(5)
        maps = rng.normal(size=(1, 2 * 2 * 3, 12, 14)).astype(np.float32)
        rois = np.array([[4.0, 8.0, 60.0, 70.0], [0.0, 0.0, 30.0, 30.0]], dtype=np.float32)
        pool64 = PSRoIPool(2, 3, 0.125)
        pool32 = PSRoIPool(2, 3, 0.125, integral_dtype=np.float32)
        out64 = pool64.forward(maps, rois)
        out32 = pool32.forward(maps, rois)
        assert out32.dtype == out64.dtype == np.float32
        np.testing.assert_allclose(out32, out64, rtol=1e-4, atol=1e-4)

"""Tests for config serialization: dict/file round-trips and dotted overrides."""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.config import (
    AdaScaleConfig,
    DatasetConfig,
    DetectorConfig,
    ExperimentConfig,
    RegressorConfig,
    ServingConfig,
    TelemetryConfig,
    TrainingConfig,
)
from repro.configio import (
    apply_overrides,
    deep_merge,
    dumps_toml,
    loads_toml,
    parse_cli_value,
    split_override,
    toml_supported,
)
from repro.presets import EXPERIMENT_PRESETS

ALL_CONFIG_CLASSES = [
    DatasetConfig,
    DetectorConfig,
    TrainingConfig,
    RegressorConfig,
    AdaScaleConfig,
    ServingConfig,
    TelemetryConfig,
    ExperimentConfig,
]

#: One non-default instance per config class, touching every value category:
#: ints, floats, strings, bools, int/float tuples, None-able fields, nesting.
MODIFIED_INSTANCES = [
    DatasetConfig(num_classes=5, clutter=0.9, name="alt", seed=11),
    DetectorConfig(backbone_channels=(4, 8), anchor_ratios=(0.4, 1.1), inference_dtype="float32"),
    TrainingConfig(train_scales=(100, 50), optimizer="sgd", learning_rate=1e-4, lr_decay_at=()),
    RegressorConfig(kernel_sizes=(1, 3, 5), stream_channels=4, weight_decay=0.0),
    AdaScaleConfig(scales=(100, 50), regressor_scales=(100, 50, 25), quantize_predicted_scale=True),
    ServingConfig(deadline_ms=12.5, backpressure="drop-oldest", use_seqnms=True),
    ServingConfig(deadline_ms=None, initial_scale=96),
    TelemetryConfig(
        enabled=True, sample_rate=0.25, decisions=False, jsonl_path="spans.jsonl"
    ),
    ExperimentConfig(
        dataset=DatasetConfig(num_classes=3),
        detector=DetectorConfig(num_classes=3),
        serving=ServingConfig(num_workers=7),
        seed=42,
    ),
]


class TestDictRoundTrip:
    @pytest.mark.parametrize("cls", ALL_CONFIG_CLASSES)
    def test_defaults_round_trip(self, cls):
        config = cls()
        assert cls.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("config", MODIFIED_INSTANCES, ids=lambda c: type(c).__name__)
    def test_modified_round_trip(self, config):
        rebuilt = type(config).from_dict(config.to_dict())
        assert rebuilt == config
        # tuples stay tuples after the list detour
        for field in dataclasses.fields(config):
            original = getattr(config, field.name)
            if isinstance(original, tuple):
                assert isinstance(getattr(rebuilt, field.name), tuple)

    @pytest.mark.parametrize("cls", ALL_CONFIG_CLASSES)
    def test_to_dict_is_json_compatible(self, cls):
        payload = cls().to_dict()
        assert cls.from_dict(json.loads(json.dumps(payload))) == cls()

    def test_missing_keys_keep_defaults(self):
        config = ServingConfig.from_dict({"num_workers": 9})
        assert config.num_workers == 9
        assert config.max_batch_size == ServingConfig().max_batch_size

    def test_from_dict_accepts_instance(self):
        config = ServingConfig(num_workers=3)
        assert ServingConfig.from_dict(config) is config

    def test_nested_partial_dict(self):
        config = ExperimentConfig.from_dict({"serving": {"queue_capacity": 5}})
        assert config.serving.queue_capacity == 5
        assert config.dataset == DatasetConfig()

    def test_nested_accepts_config_instances(self):
        serving = ServingConfig(num_workers=6)
        config = ExperimentConfig.from_dict({"serving": serving})
        assert config.serving == serving

    @settings(max_examples=25, deadline=None)
    @given(
        num_workers=st.integers(min_value=1, max_value=64),
        batch_wait_ms=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        backpressure=st.sampled_from(["block", "drop-oldest", "reject"]),
        deadline_ms=st.one_of(st.none(), st.floats(min_value=0.1, max_value=1e4, allow_nan=False)),
        use_seqnms=st.booleans(),
    )
    def test_serving_round_trip_hypothesis(
        self, num_workers, batch_wait_ms, backpressure, deadline_ms, use_seqnms
    ):
        config = ServingConfig(
            num_workers=num_workers,
            batch_wait_ms=batch_wait_ms,
            backpressure=backpressure,
            deadline_ms=deadline_ms,
            use_seqnms=use_seqnms,
        )
        assert ServingConfig.from_dict(config.to_dict()) == config
        assert ServingConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    @settings(max_examples=25, deadline=None)
    @given(
        scales=st.lists(st.integers(min_value=16, max_value=512), min_size=1, max_size=6),
        max_long_side=st.integers(min_value=64, max_value=4000),
        quantize=st.booleans(),
    )
    def test_adascale_round_trip_hypothesis(self, scales, max_long_side, quantize):
        ordered = tuple(sorted(set(scales), reverse=True))
        config = AdaScaleConfig(
            scales=ordered,
            regressor_scales=ordered,
            max_long_side=max_long_side,
            quantize_predicted_scale=quantize,
        )
        assert AdaScaleConfig.from_dict(config.to_dict()) == config


class TestStrictness:
    def test_unknown_key_rejected_with_names(self):
        with pytest.raises(ValueError, match="unknown ServingConfig key.*'bogus'"):
            ServingConfig.from_dict({"bogus": 1})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ValueError, match="DatasetConfig"):
            ExperimentConfig.from_dict({"dataset": {"nope": 3}})

    def test_type_mismatch_names_field(self):
        with pytest.raises(TypeError, match="ServingConfig.num_workers"):
            ServingConfig.from_dict({"num_workers": "three"})

    def test_bool_fields_reject_ints(self):
        with pytest.raises(TypeError, match="use_seqnms"):
            ServingConfig.from_dict({"use_seqnms": 1})

    def test_int_fields_reject_floats(self):
        with pytest.raises(TypeError, match="num_workers"):
            ServingConfig.from_dict({"num_workers": 2.5})

    def test_int_widens_to_float(self):
        config = ServingConfig.from_dict({"batch_wait_ms": 3})
        assert config.batch_wait_ms == 3.0 and isinstance(config.batch_wait_ms, float)

    def test_tuple_fields_reject_scalars(self):
        with pytest.raises(TypeError, match="train_scales"):
            TrainingConfig.from_dict({"train_scales": 128})

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError, match="expects a mapping"):
            ServingConfig.from_dict([1, 2, 3])


class TestFiles:
    @pytest.mark.parametrize("suffix", [".json", ".toml"])
    def test_experiment_file_round_trip(self, tmp_path, suffix):
        if suffix == ".toml" and not toml_supported():
            pytest.skip("no TOML reader on this interpreter")
        config = EXPERIMENT_PRESETS.get("tiny").build_config(seed=3)
        path = tmp_path / f"exp{suffix}"
        config.save(path)
        assert ExperimentConfig.load(path) == config

    @pytest.mark.parametrize("suffix", [".json", ".toml"])
    def test_serving_file_round_trip(self, tmp_path, suffix):
        if suffix == ".toml" and not toml_supported():
            pytest.skip("no TOML reader on this interpreter")
        config = ServingConfig(num_workers=5, deadline_ms=7.5, backpressure="reject")
        path = tmp_path / f"serving{suffix}"
        config.save(path)
        assert ServingConfig.load(path) == config

    def test_unsupported_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            ServingConfig().save(tmp_path / "config.yaml")

    @pytest.mark.skipif(not toml_supported(), reason="no TOML reader")
    def test_toml_none_fields_survive_via_defaults(self):
        config = ServingConfig(deadline_ms=None, initial_scale=None)
        text = dumps_toml(config.to_dict())
        assert "deadline_ms" not in text  # TOML has no null; omitted
        assert ServingConfig.from_dict(loads_toml(text)) == config

    @pytest.mark.skipif(not toml_supported(), reason="no TOML reader")
    def test_toml_escapes_strings(self):
        config = DatasetConfig(name='we"ird\\name')
        assert DatasetConfig.from_dict(loads_toml(dumps_toml(config.to_dict()))) == config


class TestOverrides:
    def test_split_override(self):
        assert split_override("a.b=c=d") == ("a.b", "c=d")
        with pytest.raises(ValueError):
            split_override("no-equals")

    def test_parse_cli_values(self):
        assert parse_cli_value("5", float, "x") == 5.0
        assert parse_cli_value("true", bool, "x") is True
        assert parse_cli_value("drop-oldest", str, "x") == "drop-oldest"
        assert parse_cli_value("128,96,72", tuple[int, ...], "x") == (128, 96, 72)
        assert parse_cli_value("[128, 96]", tuple[int, ...], "x") == (128, 96)
        assert parse_cli_value("none", float | None, "x") is None
        assert parse_cli_value("2.5", float | None, "x") == 2.5

    def test_with_overrides_typed(self):
        config = ExperimentConfig().with_overrides(
            {
                "serving.batch_wait_ms": "5",
                "serving.backpressure": "drop-oldest",
                "adascale.quantize_predicted_scale": "true",
                "training.train_scales": "96,48",
                "serving.deadline_ms": "none",
            }
        )
        assert config.serving.batch_wait_ms == 5.0
        assert config.serving.backpressure == "drop-oldest"
        assert config.adascale.quantize_predicted_scale is True
        assert config.training.train_scales == (96, 48)
        assert config.serving.deadline_ms is None

    def test_override_unknown_path_lists_fields(self):
        with pytest.raises(ValueError, match="serving.bogus"):
            ExperimentConfig().with_overrides({"serving.bogus": "1"})

    def test_override_through_leaf_rejected(self):
        with pytest.raises(ValueError, match="not a nested config"):
            ExperimentConfig().with_overrides({"seed.deeper": "1"})

    def test_apply_overrides_accepts_typed_values(self):
        config = apply_overrides(ServingConfig(), {"num_workers": 4, "deadline_ms": 2.0})
        assert config.num_workers == 4 and config.deadline_ms == 2.0

    def test_telemetry_override_via_set(self):
        """``--set telemetry.sample_rate=0.1`` resolves through the facade."""
        config = api.load_experiment_config(
            "tiny",
            overrides=["telemetry.sample_rate=0.1", "telemetry.enabled=true"],
        )
        assert config.telemetry.enabled is True
        assert config.telemetry.sample_rate == pytest.approx(0.1)
        # Untouched telemetry fields keep their defaults.
        assert config.telemetry.ring_capacity == TelemetryConfig().ring_capacity

    def test_telemetry_validation_bounds(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_rate=1.5).validate()
        with pytest.raises(ValueError):
            TelemetryConfig(ring_capacity=0).validate()

    def test_precedence_preset_file_cli(self, tmp_path):
        """preset < config file < --set, as the CLI merges them."""
        config_path = tmp_path / "exp.json"
        json.dump(
            {"serving": {"num_workers": 11, "max_batch_size": 3}, "seed": 5},
            config_path.open("w"),
        )
        config = api.load_experiment_config(
            "tiny",
            config_file=config_path,
            overrides=["serving.num_workers=13"],
        )
        tiny = EXPERIMENT_PRESETS.get("tiny").build_config(seed=None)
        assert config.serving.num_workers == 13  # CLI beats file
        assert config.serving.max_batch_size == 3  # file beats preset
        assert config.seed == 5
        assert config.dataset == tiny.dataset.with_(seed=5) or config.dataset == tiny.dataset

    def test_deep_merge_semantics(self):
        base = {"a": {"x": 1, "y": 2}, "b": [1, 2], "c": 3}
        overlay = {"a": {"y": 5}, "b": [9]}
        merged = deep_merge(base, overlay)
        assert merged == {"a": {"x": 1, "y": 5}, "b": [9], "c": 3}
        assert base["a"]["y"] == 2  # base untouched


class TestRemovedEntryPoints:
    """The PR-4 deprecation shims are gone; the old names must fail loudly."""

    @pytest.mark.parametrize(
        "name",
        [
            "tiny_experiment_config",
            "small_experiment_config",
            "small_ytbb_experiment_config",
            "paper_scales",
            "tiny_experiment",
        ],
    )
    def test_old_names_raise_pointing_at_api(self, name):
        from repro import presets

        with pytest.raises(AttributeError, match="repro.api|PAPER_ADASCALE"):
            getattr(presets, name)
        # from-imports surface the same guidance as ImportError.
        with pytest.raises(ImportError, match="repro"):
            exec(f"from repro.presets import {name}")

    def test_unknown_attribute_still_plain_attribute_error(self):
        from repro import presets

        with pytest.raises(AttributeError, match="no attribute"):
            presets.definitely_not_a_thing

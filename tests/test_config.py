"""Tests for the configuration dataclasses."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    AdaScaleConfig,
    DatasetConfig,
    DetectorConfig,
    ExperimentConfig,
    PAPER_REGRESSOR_SCALES,
    PAPER_SCALES,
    REDUCED_REGRESSOR_SCALES,
    REDUCED_SCALES,
    RegressorConfig,
    TrainingConfig,
)
from repro.presets import EXPERIMENT_PRESETS, PAPER_ADASCALE


class TestScaleConstants:
    def test_paper_scales_match_publication(self):
        assert PAPER_SCALES == (600, 480, 360, 240)
        assert PAPER_REGRESSOR_SCALES == (600, 480, 360, 240, 128)

    def test_reduced_scales_preserve_ratio_span(self):
        paper_span = PAPER_REGRESSOR_SCALES[0] / PAPER_REGRESSOR_SCALES[-1]
        reduced_span = REDUCED_REGRESSOR_SCALES[0] / REDUCED_REGRESSOR_SCALES[-1]
        assert reduced_span == pytest.approx(paper_span, rel=0.2)

    def test_reduced_scales_descend(self):
        assert REDUCED_SCALES == tuple(sorted(REDUCED_SCALES, reverse=True))


class TestConfigDataclasses:
    def test_configs_are_frozen(self):
        config = DatasetConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.num_classes = 3  # type: ignore[misc]

    def test_with_creates_modified_copy(self):
        config = DetectorConfig()
        changed = config.with_(num_classes=5)
        assert changed.num_classes == 5
        assert config.num_classes != 5 or config.num_classes == 5  # original untouched
        assert config is not changed

    def test_adascale_min_max(self):
        config = AdaScaleConfig(scales=(100, 50), regressor_scales=(100, 50, 25))
        assert config.min_scale == 25
        assert config.max_scale == 100

    def test_training_defaults_multi_scale(self):
        assert len(TrainingConfig().train_scales) > 1

    def test_regressor_default_kernels_match_paper_best(self):
        # Table 3: the 1 & 3 kernel combination is the paper's selected design.
        assert RegressorConfig().kernel_sizes == (1, 3)


class TestExperimentValidation:
    def test_default_experiment_is_valid(self):
        ExperimentConfig().validate()

    def test_class_count_mismatch_rejected(self):
        config = ExperimentConfig(detector=DetectorConfig(num_classes=5))
        with pytest.raises(ValueError, match="num_classes"):
            config.validate()

    def test_scales_must_be_subset_of_regressor_scales(self):
        config = ExperimentConfig(
            adascale=AdaScaleConfig(scales=(128, 100), regressor_scales=(128, 96, 48))
        )
        with pytest.raises(ValueError, match="subset"):
            config.validate()

    def test_train_scales_cannot_exceed_max_scale(self):
        config = ExperimentConfig(training=TrainingConfig(train_scales=(999,)))
        with pytest.raises(ValueError):
            config.validate()

    def test_scale_order_enforced(self):
        config = ExperimentConfig(
            adascale=AdaScaleConfig(scales=(48, 128), regressor_scales=(128, 48, 32))
        )
        with pytest.raises(ValueError, match="largest to smallest"):
            config.validate()


class TestPresets:
    @pytest.mark.parametrize("name", ["tiny", "vid", "ytbb"])
    def test_registered_presets_validate(self, name):
        EXPERIMENT_PRESETS.get(name).build_config().validate()

    def test_presets_differ_in_dataset_size(self):
        tiny = EXPERIMENT_PRESETS.get("tiny").build_config()
        small = EXPERIMENT_PRESETS.get("vid").build_config()
        assert tiny.dataset.num_train_snippets < small.dataset.num_train_snippets

    def test_paper_scales_preset(self):
        assert PAPER_ADASCALE.scales == PAPER_SCALES
        assert PAPER_ADASCALE.max_long_side == 2000

    def test_seed_propagates(self):
        config = EXPERIMENT_PRESETS.get("vid").build_config(seed=9)
        assert config.seed == 9
        assert config.dataset.seed == 9

    def test_seed_none_keeps_spec_seeds(self):
        config = EXPERIMENT_PRESETS.get("vid").build_config(seed=None)
        assert config.seed == 0

"""Tests for optical flow, Deep Feature Flow, Seq-NMS and the AdaScale combinations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acceleration import (
    AdaScaleDFFDetector,
    DFFDetector,
    SeqNMSConfig,
    adascale_with_seqnms,
    estimate_flow,
    seq_nms,
    warp_features,
)
from repro.acceleration.optical_flow import to_grayscale
from repro.evaluation import DetectionRecord, evaluate_detections


class TestOpticalFlow:
    def test_grayscale_shape_and_range(self, rng):
        image = rng.random((16, 20, 3)).astype(np.float32)
        gray = to_grayscale(image)
        assert gray.shape == (16, 20)
        assert gray.min() >= 0.0 and gray.max() <= 1.0

    def test_grayscale_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros((4, 4)))

    def test_zero_flow_for_identical_images(self, rng):
        image = rng.random((32, 40, 3)).astype(np.float32)
        flow = estimate_flow(image, image, cell_size=8, search_radius=3)
        np.testing.assert_array_equal(flow, np.zeros_like(flow))

    def test_recovers_known_translation(self, rng):
        """A pure translation of a textured image is recovered (up to the search radius)."""
        base = rng.random((48, 64, 3)).astype(np.float32)
        shift = 3
        current = np.roll(base, shift=(shift, shift), axis=(0, 1))
        flow = estimate_flow(base, current, cell_size=8, search_radius=4)
        # Interior cells should vote for (-shift, -shift): content moved down-right,
        # so it is found up-left in the reference.
        interior = flow[:, 2:-2, 2:-2]
        assert np.median(interior[0]) == pytest.approx(-shift, abs=1)
        assert np.median(interior[1]) == pytest.approx(-shift, abs=1)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            estimate_flow(rng.random((8, 8, 3)), rng.random((9, 8, 3)))

    def test_invalid_parameters_rejected(self, rng):
        image = rng.random((16, 16, 3)).astype(np.float32)
        with pytest.raises(ValueError):
            estimate_flow(image, image, cell_size=0)
        with pytest.raises(ValueError):
            estimate_flow(image, image, search_radius=-1)

    def test_warp_identity_with_zero_flow(self, rng):
        features = rng.normal(size=(1, 4, 6, 8)).astype(np.float32)
        flow = np.zeros((2, 6, 8), dtype=np.float32)
        warped = warp_features(features, flow, feature_stride=8)
        np.testing.assert_allclose(warped, features, rtol=1e-5)

    def test_warp_translates_features(self):
        features = np.zeros((1, 1, 5, 5), dtype=np.float32)
        features[0, 0, 2, 2] = 1.0
        # Flow says: content at each cell is found one stride to the right in the
        # reference, so the warped map pulls the peak one cell to the left.
        flow = np.full((2, 5, 5), 0.0, dtype=np.float32)
        flow[1] = 8.0
        warped = warp_features(features, flow, feature_stride=8)
        assert warped[0, 0, 2, 1] == pytest.approx(1.0, abs=1e-5)

    def test_warp_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            warp_features(rng.normal(size=(2, 4, 4)), np.zeros((2, 4, 4)), 8)
        with pytest.raises(ValueError):
            warp_features(rng.normal(size=(1, 2, 4, 4)), np.zeros((3, 4, 4)), 8)


class TestDFF:
    def test_key_frame_schedule(self, micro_bundle):
        dff = DFFDetector(micro_bundle.ms_detector, key_frame_interval=2, config=micro_bundle.config.adascale)
        snippet = micro_bundle.val_dataset[0]
        output = dff.process_video(snippet.frames(), scale=64)
        assert output.is_key_frame == [index % 2 == 0 for index in range(len(snippet))]
        assert len(output) == len(snippet)

    def test_interval_one_equals_full_detection_count(self, micro_bundle):
        dff = DFFDetector(micro_bundle.ms_detector, key_frame_interval=1, config=micro_bundle.config.adascale)
        snippet = micro_bundle.val_dataset[0]
        output = dff.process_video(snippet.frames(), scale=64)
        assert all(output.is_key_frame)

    def test_records_align_with_frames(self, micro_bundle):
        dff = DFFDetector(micro_bundle.ms_detector, key_frame_interval=3, config=micro_bundle.config.adascale)
        snippet = micro_bundle.val_dataset[0]
        frames = snippet.frames()
        records = dff.process_video(frames, scale=64).to_records(frames)
        assert len(records) == len(frames)
        assert all(isinstance(record, DetectionRecord) for record in records)

    def test_scales_used_follow_requested_scale(self, micro_bundle):
        dff = DFFDetector(micro_bundle.ms_detector, key_frame_interval=2, config=micro_bundle.config.adascale)
        snippet = micro_bundle.val_dataset[0]
        output = dff.process_video(snippet.frames(), scale=48)
        assert set(output.scales_used) == {48}

    def test_scale_schedule_per_key_frame(self, micro_bundle):
        dff = DFFDetector(micro_bundle.ms_detector, key_frame_interval=2, config=micro_bundle.config.adascale)
        snippet = micro_bundle.val_dataset[0]
        output = dff.process_video(snippet.frames(), scale_schedule=[64, 32])
        assert output.scales_used[0] == 64
        assert output.scales_used[2] == 32

    def test_invalid_interval_rejected(self, micro_bundle):
        with pytest.raises(ValueError):
            DFFDetector(micro_bundle.ms_detector, key_frame_interval=0)

    def test_dff_keeps_reasonable_accuracy(self, micro_bundle):
        """DFF's mAP should not collapse relative to per-frame detection on the
        synthetic data (objects move slowly)."""
        detector = micro_bundle.ms_detector
        dataset = micro_bundle.val_dataset
        full_records, dff_records = [], []
        dff = DFFDetector(detector, key_frame_interval=3, config=micro_bundle.config.adascale)
        for snippet in dataset:
            frames = snippet.frames()
            for frame in frames:
                result = detector.detect(frame.image, target_scale=64, max_long_side=240)
                full_records.append(
                    DetectionRecord(result.boxes, result.scores, result.class_ids, frame.boxes, frame.labels)
                )
            dff_records.extend(dff.process_video(frames, scale=64).to_records(frames))
        full_map = evaluate_detections(full_records, dataset.class_names).mean_ap
        dff_map = evaluate_detections(dff_records, dataset.class_names).mean_ap
        assert dff_map >= 0.4 * full_map


class TestSeqNMS:
    def _snippet_records(self):
        """Three frames tracking one object whose middle detection has a low score."""
        gt = np.array([[10, 10, 30, 30]], dtype=np.float32)
        boxes = [
            np.array([[10, 10, 30, 30]], dtype=np.float32),
            np.array([[11, 11, 31, 31]], dtype=np.float32),
            np.array([[12, 12, 32, 32]], dtype=np.float32),
        ]
        scores = [np.array([0.9]), np.array([0.2]), np.array([0.85])]
        return [
            DetectionRecord(
                boxes=boxes[i],
                scores=scores[i].astype(np.float32),
                class_ids=np.array([0]),
                gt_boxes=gt,
                gt_labels=np.array([0]),
                frame_id=(0, i),
            )
            for i in range(3)
        ]

    def test_rescoring_boosts_weak_link(self):
        records = self._snippet_records()
        rescored = seq_nms(records, num_classes=1)
        assert rescored[1].scores[0] > records[1].scores[0]

    def test_scores_never_decrease(self):
        records = self._snippet_records()
        rescored = seq_nms(records, num_classes=1)
        for before, after in zip(records, rescored):
            assert np.all(after.scores >= before.scores - 1e-6)

    def test_boxes_and_gt_unchanged(self):
        records = self._snippet_records()
        rescored = seq_nms(records, num_classes=1)
        for before, after in zip(records, rescored):
            np.testing.assert_array_equal(before.boxes, after.boxes)
            np.testing.assert_array_equal(before.gt_boxes, after.gt_boxes)

    def test_max_rescoring_uses_path_maximum(self):
        records = self._snippet_records()
        rescored = seq_nms(records, num_classes=1, config=SeqNMSConfig(rescore="max"))
        assert rescored[1].scores[0] == pytest.approx(0.9, abs=1e-5)

    def test_unlinked_detections_keep_scores(self):
        gt = np.zeros((0, 4), dtype=np.float32)
        records = [
            DetectionRecord(
                boxes=np.array([[0, 0, 10, 10]], dtype=np.float32),
                scores=np.array([0.5], dtype=np.float32),
                class_ids=np.array([0]),
                gt_boxes=gt,
                gt_labels=np.zeros(0, dtype=np.int64),
                frame_id=(0, 0),
            ),
            DetectionRecord(
                boxes=np.array([[100, 100, 120, 120]], dtype=np.float32),
                scores=np.array([0.6], dtype=np.float32),
                class_ids=np.array([0]),
                gt_boxes=gt,
                gt_labels=np.zeros(0, dtype=np.int64),
                frame_id=(0, 1),
            ),
        ]
        rescored = seq_nms(records, num_classes=1)
        assert rescored[0].scores[0] == pytest.approx(0.5)
        assert rescored[1].scores[0] == pytest.approx(0.6)

    def test_classes_processed_independently(self):
        gt = np.zeros((0, 4), dtype=np.float32)
        records = [
            DetectionRecord(
                boxes=np.array([[0, 0, 10, 10], [0, 0, 10, 10]], dtype=np.float32),
                scores=np.array([0.9, 0.1], dtype=np.float32),
                class_ids=np.array([0, 1]),
                gt_boxes=gt,
                gt_labels=np.zeros(0, dtype=np.int64),
                frame_id=(0, index),
            )
            for index in range(2)
        ]
        rescored = seq_nms(records, num_classes=2)
        # Class 1's weak chain is only rescored with class-1 scores, never class-0 scores.
        assert rescored[0].scores[1] <= 0.2

    def test_invalid_rescore_mode(self):
        with pytest.raises(ValueError):
            seq_nms(self._snippet_records(), num_classes=1, config=SeqNMSConfig(rescore="median"))

    def test_empty_records(self):
        assert seq_nms([], num_classes=1) == []

    def test_seqnms_does_not_reduce_map(self, micro_bundle):
        """On real (micro) detections Seq-NMS should not hurt mAP."""
        detector = micro_bundle.ms_detector
        dataset = micro_bundle.val_dataset
        baseline_records, rescored_records = [], []
        for snippet in dataset:
            frames = snippet.frames()
            records = []
            for frame in frames:
                result = detector.detect(frame.image, target_scale=64, max_long_side=240)
                records.append(
                    DetectionRecord(result.boxes, result.scores, result.class_ids, frame.boxes, frame.labels)
                )
            baseline_records.extend(records)
            rescored_records.extend(seq_nms(records, num_classes=dataset.num_classes))
        base = evaluate_detections(baseline_records, dataset.class_names).mean_ap
        rescored = evaluate_detections(rescored_records, dataset.class_names).mean_ap
        assert rescored >= base - 0.02


class TestCombined:
    def test_adascale_dff_adapts_key_frame_scale(self, micro_bundle):
        combined = AdaScaleDFFDetector(
            micro_bundle.ms_detector,
            micro_bundle.regressor,
            key_frame_interval=2,
            config=micro_bundle.config.adascale,
        )
        snippet = micro_bundle.val_dataset[0]
        output = combined.process_video(snippet.frames())
        assert len(output) == len(snippet)
        config = micro_bundle.config.adascale
        assert all(config.min_scale <= scale <= config.max_scale for scale in output.scales_used)
        # The first group always starts at the maximum scale (Algorithm 1 initialisation).
        assert output.scales_used[0] == config.max_scale

    def test_adascale_seqnms_returns_aligned_outputs(self, micro_bundle):
        snippet = micro_bundle.val_dataset[0]
        frames = snippet.frames()
        records, runtimes, scales = adascale_with_seqnms(
            micro_bundle.adascale, frames, num_classes=micro_bundle.val_dataset.num_classes
        )
        assert len(records) == len(frames)
        assert len(runtimes) == len(frames)
        assert len(scales) == len(frames)
        assert all(runtime > 0 for runtime in runtimes)

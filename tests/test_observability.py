"""Tests for ``repro.observability`` — tracing, metrics, sinks and exporters.

Covers the PR 6 tentpole end to end: tracer activation discipline (the
profiler-style null path), deterministic sampling, the bounded ring buffer,
the process-wide metrics registry under thread churn, Chrome-trace and
Prometheus exporters (including their validators catching broken payloads),
SLO burn-rate series, JSONL span-log round trips, governor/autoscaler
decision events on a traced cluster run, and full frame-lifecycle trace
propagation through the real serving stack via the api facade.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import api
from repro.cluster import (
    ClusterConfig,
    ScenarioConfig,
    analytic_service_model,
)
from repro.cluster.governor import GovernorAction
from repro.config import AdaScaleConfig, ServingConfig, TelemetryConfig
from repro.observability import (
    MetricsRegistry,
    RingBufferSink,
    SpanEvent,
    SpanExportBuffer,
    Tracer,
    active_tracer,
    burn_rate_series,
    diff_snapshots,
    events_to_metrics,
    load_span_log,
    shard_rollup,
    stage_rollup,
    to_chrome_trace,
    to_prometheus_text,
    validate_chrome_trace,
    validate_prometheus_text,
    write_chrome_trace,
)

ADA = AdaScaleConfig()
SERVING = ServingConfig(num_workers=2, max_batch_size=4, queue_capacity=64)


def _completion(
    trace_id: int,
    start_s: float,
    latency_ms: float,
    stream_id: int = 0,
    shard_id: int = 0,
) -> SpanEvent:
    return SpanEvent(
        name="serving/complete_frame",
        kind="instant",
        trace_id=trace_id,
        span_id=trace_id,
        parent_id=None,
        start_s=start_s,
        duration_s=0.0,
        stream_id=stream_id,
        shard_id=shard_id,
        attrs={"latency_ms": latency_ms},
    )


# -- tracer activation ---------------------------------------------------------
class TestTracerActivation:
    def test_disabled_tracer_never_activates(self):
        tracer = Tracer(TelemetryConfig(enabled=False))
        with tracer:
            assert active_tracer() is None
        assert active_tracer() is None

    def test_enabled_tracer_activates_and_clears(self):
        tracer = Tracer(TelemetryConfig(enabled=True))
        assert active_tracer() is None
        with tracer:
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_nested_activation_raises(self):
        with Tracer(TelemetryConfig(enabled=True)):
            with pytest.raises(RuntimeError, match="already active"):
                Tracer(TelemetryConfig(enabled=True)).__enter__()
        assert active_tracer() is None

    def test_events_survive_deactivation(self):
        tracer = Tracer(TelemetryConfig(enabled=True))
        with tracer:
            tracer.begin_trace(stream_id=0, frame_index=0, now=0.0)
        assert len(tracer.events()) == 1
        assert tracer.events()[0].name == "serving/admit"

    def test_constructor_overrides_apply(self):
        tracer = Tracer(TelemetryConfig(enabled=True), sample_rate=0.5)
        assert tracer.config.sample_rate == 0.5

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Tracer(TelemetryConfig(enabled=True, sample_rate=1.5))


# -- sampling ------------------------------------------------------------------
class TestSampling:
    def test_rate_zero_samples_everything_out(self):
        tracer = Tracer(TelemetryConfig(enabled=True, sample_rate=0.0))
        for index in range(10):
            assert tracer.begin_trace(stream_id=0, frame_index=index, now=0.0) is None
        assert tracer.events() == ()

    def test_rate_one_traces_every_admission(self):
        tracer = Tracer(TelemetryConfig(enabled=True))
        contexts = [
            tracer.begin_trace(stream_id=3, frame_index=index, now=float(index))
            for index in range(5)
        ]
        assert all(context is not None for context in contexts)
        admits = [event for event in tracer.events() if event.name == "serving/admit"]
        assert len(admits) == 5
        assert len({context.trace_id for context in contexts}) == 5

    def test_sampling_is_deterministic_per_admission_order(self):
        config = TelemetryConfig(enabled=True, sample_rate=0.25)
        decisions = []
        for _ in range(2):
            tracer = Tracer(config)
            decisions.append(
                tuple(
                    tracer.begin_trace(stream_id=0, frame_index=i, now=0.0) is not None
                    for i in range(200)
                )
            )
        assert decisions[0] == decisions[1]

    def test_sampling_keeps_roughly_the_configured_fraction(self):
        tracer = Tracer(TelemetryConfig(enabled=True, sample_rate=0.25, ring_capacity=4096))
        total = 2000
        kept = sum(
            tracer.begin_trace(stream_id=0, frame_index=i, now=0.0) is not None
            for i in range(total)
        )
        assert 0.15 < kept / total < 0.35

    def test_spans_toggle_suppresses_span_emission(self):
        tracer = Tracer(TelemetryConfig(enabled=True, spans=False))
        context = tracer.begin_trace(stream_id=0, frame_index=0, now=0.0)
        assert context is not None
        tracer.emit_span("serving/queue_wait", context, start_s=0.0, duration_s=0.1)
        tracer.instant("serving/complete_frame", context, now=0.2, latency_ms=5.0)
        # The admission instant still records (the trace exists); the frame's
        # spans and instants are suppressed by the toggle.
        assert [event.name for event in tracer.events()] == ["serving/admit"]

    def test_decisions_toggle_suppresses_decision_events(self):
        tracer = Tracer(TelemetryConfig(enabled=True, decisions=False))
        action = GovernorAction(
            time_s=1.0, shard_id=0, action="degrade", knob="scale_cap",
            old=128, new=96, p95_ms=300.0, queue_depth=12, reason="p95 over target",
        )
        tracer.decision(action)
        assert tracer.events() == ()


# -- ring buffer ---------------------------------------------------------------
class TestRingBuffer:
    def test_capacity_bounds_and_evicts_oldest(self):
        tracer = Tracer(TelemetryConfig(enabled=True, ring_capacity=16))
        for index in range(50):
            tracer.begin_trace(stream_id=0, frame_index=index, now=float(index))
        events = tracer.events()
        assert len(events) == 16
        # Oldest events dropped: the survivors are the newest 16 admissions.
        assert [event.frame_index for event in events] == list(range(34, 50))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_len_tracks_contents(self):
        sink = RingBufferSink(capacity=4)
        assert len(sink) == 0
        sink.emit(_completion(1, 0.0, 10.0))
        assert len(sink) == 1


# -- metrics registry ----------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_is_correct_under_thread_churn(self):
        registry = MetricsRegistry()
        cell = registry.counter("test_total").labels(kind="x")
        per_thread, threads = 5000, 4

        def worker():
            for _ in range(per_thread):
                cell.inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert cell.value == per_thread * threads

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_metric")
        with pytest.raises(ValueError, match="registered as a counter"):
            registry.gauge("repro_test_metric")

    def test_same_labels_resolve_to_same_cell(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total")
        assert family.labels(shard="0", kind="a") is family.labels(kind="a", shard="0")
        assert family.labels(shard="1", kind="a") is not family.labels(shard="0", kind="a")

    def test_gauge_set_and_high_watermark(self):
        registry = MetricsRegistry()
        cell = registry.gauge("depth").labels(shard="0")
        cell.set(3.0)
        cell.max(1.0)  # lower: ignored
        assert cell.value == 3.0
        cell.max(7.0)
        assert cell.value == 7.0

    def test_histogram_summary_quantiles(self):
        registry = MetricsRegistry()
        cell = registry.histogram("latency_seconds").labels(shard="0")
        for value in range(1, 101):
            cell.observe(float(value))
        summary = cell.summary()
        assert summary["count"] == 100.0
        assert summary["sum"] == 5050.0
        assert 45.0 <= summary["p50"] <= 55.0
        assert 90.0 <= summary["p95"] <= 100.0

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("a_total", help="things").labels(kind="x").inc(2.0)
        registry.histogram("b_seconds").labels().observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["a_total"]["type"] == "counter"
        assert snapshot["a_total"]["help"] == "things"
        assert snapshot["a_total"]["samples"] == [
            {"labels": {"kind": "x"}, "value": 2.0}
        ]
        histogram = snapshot["b_seconds"]["samples"][0]
        assert histogram["count"] == 1.0 and histogram["sum"] == 0.5


# -- exporters -----------------------------------------------------------------
class TestExporters:
    def _traced_events(self) -> tuple[SpanEvent, ...]:
        tracer = Tracer(TelemetryConfig(enabled=True))
        context = tracer.begin_trace(stream_id=2, frame_index=0, shard_id=1, now=0.0)
        tracer.emit_span("serving/queue_wait", context, start_s=0.0, duration_s=0.01)
        tracer.emit_span("serving/service", context, start_s=0.01, duration_s=0.02)
        tracer.instant("serving/complete_frame", context, now=0.03, latency_ms=30.0)
        action = GovernorAction(
            time_s=0.02, shard_id=1, action="degrade", knob="scale_cap",
            old=128, new=96, p95_ms=250.0, queue_depth=8, reason="pressure",
        )
        tracer.decision(action)
        return tracer.events()

    def test_chrome_trace_round_trip_is_valid(self, tmp_path):
        events = self._traced_events()
        path = write_chrome_trace(tmp_path / "trace.json", events)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        records = payload["traceEvents"]
        assert len(records) == len(events)
        spans = [record for record in records if record["ph"] == "X"]
        assert {record["name"] for record in spans} == {
            "serving/queue_wait",
            "serving/service",
        }
        assert all("dur" in record for record in spans)
        decision = next(r for r in records if r["cat"] == "decision")
        assert decision["s"] == "p" and decision["args"]["old"] == 128

    def test_chrome_validator_catches_broken_payloads(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        broken = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}
        assert any("without dur" in problem for problem in validate_chrome_trace(broken))

    def test_prometheus_text_from_events_is_valid(self):
        text = to_prometheus_text(events_to_metrics(self._traced_events()))
        assert validate_prometheus_text(text) == []
        assert 'repro_trace_frames_completed_total{shard="1"} 1' in text
        assert "# TYPE repro_trace_frame_latency_seconds summary" in text
        assert 'quantile="0.95"' in text

    def test_prometheus_validator_catches_garbage(self):
        assert validate_prometheus_text("not a metric line at all!\n")
        assert validate_prometheus_text("metric_total notanumber\n")
        assert validate_prometheus_text("# just a comment\n") == []

    def test_stage_and_shard_rollups(self):
        events = self._traced_events()
        stages = stage_rollup(events)
        assert stages["serving/service"]["count"] == 1
        assert stages["serving/service"]["total_s"] == pytest.approx(0.02)
        # Sorted by descending total time.
        assert list(stages) == ["serving/service", "serving/queue_wait"]
        shards = shard_rollup(events)
        assert shards[1]["admitted"] == 1
        assert shards[1]["completed"] == 1
        assert shards[1]["decisions"] == 1
        assert shards[1]["busy_s"] == pytest.approx(0.02)


# -- burn rate -----------------------------------------------------------------
class TestBurnRate:
    def test_per_stream_buckets_and_rates(self):
        events = [
            _completion(1, 0.1, latency_ms=50.0, stream_id=0),
            _completion(2, 0.2, latency_ms=500.0, stream_id=0),
            _completion(3, 1.5, latency_ms=50.0, stream_id=0),
            _completion(4, 0.3, latency_ms=500.0, stream_id=1),
        ]
        series = burn_rate_series(events, target_ms=100.0, bucket_s=1.0, key="stream")
        assert series[0] == [(0.0, 0.5, 2), (1.0, 0.0, 1)]
        assert series[1] == [(0.0, 1.0, 1)]

    def test_per_shard_keying(self):
        events = [
            _completion(1, 0.0, latency_ms=500.0, shard_id=0),
            _completion(2, 0.0, latency_ms=50.0, shard_id=1),
        ]
        series = burn_rate_series(events, target_ms=100.0, key="shard")
        assert series[0][0][1] == 1.0
        assert series[1][0][1] == 0.0

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError, match="key"):
            burn_rate_series([], target_ms=100.0, key="galaxy")
        with pytest.raises(ValueError, match="bucket_s"):
            burn_rate_series([], target_ms=100.0, bucket_s=0.0)

    def test_non_completion_events_ignored(self):
        tracer = Tracer(TelemetryConfig(enabled=True))
        tracer.begin_trace(stream_id=0, frame_index=0, now=0.0)
        assert burn_rate_series(tracer.events(), target_ms=100.0) == {}


# -- JSONL span log ------------------------------------------------------------
class TestJsonlRoundTrip:
    def test_span_log_round_trips_every_event(self, tmp_path):
        log_path = tmp_path / "spans.jsonl"
        tracer = Tracer(TelemetryConfig(enabled=True, jsonl_path=str(log_path)))
        with tracer:
            context = tracer.begin_trace(stream_id=1, frame_index=0, shard_id=0, now=0.0)
            tracer.emit_span("serving/service", context, 0.0, 0.01, service_s=0.005)
            tracer.instant("serving/complete_frame", context, now=0.01, latency_ms=10.0)
        loaded = load_span_log(log_path)
        assert loaded == tracer.events()
        # Attrs survive with their values intact.
        assert loaded[1].attrs["service_s"] == 0.005

    def test_event_dict_round_trip(self):
        event = _completion(7, 1.25, latency_ms=42.0, stream_id=3, shard_id=2)
        assert SpanEvent.from_dict(json.loads(json.dumps(event.to_dict()))) == event

    def test_truncated_final_line_returns_valid_prefix(self, tmp_path):
        """A SIGKILLed writer leaves half a line; the prefix must still load."""
        log_path = tmp_path / "spans.jsonl"
        good = [_completion(i, float(i), latency_ms=10.0) for i in range(3)]
        text = "".join(json.dumps(e.to_dict()) + "\n" for e in good)
        log_path.write_text(text + '{"name": "serving/compl')  # cut mid-write
        loaded = load_span_log(log_path)
        assert loaded == tuple(good)

    def test_corrupt_middle_line_still_raises(self, tmp_path):
        log_path = tmp_path / "spans.jsonl"
        good = _completion(1, 0.0, latency_ms=10.0)
        log_path.write_text(
            json.dumps(good.to_dict()) + "\n"
            + "not json at all\n"
            + json.dumps(good.to_dict()) + "\n"
        )
        with pytest.raises(ValueError, match="line 2"):
            load_span_log(log_path)

    def test_truncated_final_line_alone_yields_no_events(self, tmp_path):
        log_path = tmp_path / "spans.jsonl"
        log_path.write_text('{"half a rec')
        assert load_span_log(log_path) == ()


# -- span export buffer (the process-boundary staging sink) --------------------
class TestSpanExportBuffer:
    def test_emit_drain_preserves_order(self):
        buffer = SpanExportBuffer(capacity=8)
        events = [_completion(i, float(i), latency_ms=1.0) for i in range(5)]
        for event in events:
            buffer.emit(event)
        assert len(buffer) == 5
        assert buffer.drain() == events
        assert len(buffer) == 0
        assert buffer.drain() == []

    def test_overflow_sheds_and_counts_instead_of_blocking(self):
        buffer = SpanExportBuffer(capacity=2)
        for i in range(5):
            buffer.emit(_completion(i, float(i), latency_ms=1.0))
        assert len(buffer) == 2
        assert buffer.dropped == 3
        # The survivors are the oldest two — drain frees room again.
        kept = buffer.drain()
        assert [e.trace_id for e in kept] == [0, 1]
        buffer.emit(_completion(9, 9.0, latency_ms=1.0))
        assert len(buffer) == 1
        assert buffer.dropped == 3  # drop counter is cumulative, not reset

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanExportBuffer(capacity=0)

    def test_attaches_to_tracer_as_extra_sink(self):
        tracer = Tracer(TelemetryConfig(enabled=True))
        buffer = SpanExportBuffer(capacity=16)
        tracer.add_sink(buffer)
        context = tracer.begin_trace(stream_id=0, frame_index=0, now=0.0)
        tracer.emit_span("serving/service", context, 0.0, 0.01)
        drained = buffer.drain()
        assert [e.name for e in drained] == ["serving/admit", "serving/service"]
        assert drained == list(tracer.events())


# -- free-standing spans and cross-process ingestion ---------------------------
class TestTracerSpanAndIngest:
    def test_span_emits_free_standing_duration_event(self):
        tracer = Tracer(TelemetryConfig(enabled=True))
        tracer.span(
            "supervisor/respawn", start_s=2.0, duration_s=0.5,
            shard_id=1, attempt=1, generation=1,
        )
        (event,) = tracer.events()
        assert event.kind == "span"
        assert event.trace_id == 0 and event.parent_id is None
        assert event.start_s == 2.0 and event.duration_s == 0.5
        assert event.shard_id == 1
        assert event.attrs == {"attempt": 1, "generation": 1}

    def test_span_respects_spans_toggle(self):
        tracer = Tracer(TelemetryConfig(enabled=True, spans=False))
        tracer.span("supervisor/crash", start_s=0.0, duration_s=0.1)
        assert tracer.events() == ()

    def test_ingest_bypasses_gating_and_hits_every_sink(self):
        # The producer already applied its own config; the merge side must
        # not re-sample or re-gate the shipped event.
        tracer = Tracer(TelemetryConfig(enabled=True, spans=False, sample_rate=0.0))
        foreign = _completion(5, 1.0, latency_ms=3.0)
        tracer.ingest(foreign)
        assert tracer.events() == (foreign,)


# -- cross-process metric federation -------------------------------------------
class TestMetricFederation:
    def _child_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        frames = registry.counter("frames_total", help="frames")
        depth = registry.gauge("queue_depth")
        latency = registry.histogram("latency_seconds")
        frames.labels(state="completed").inc(3)
        depth.labels().set(4)
        latency.labels().observe(0.25)
        latency.labels().observe(0.75)
        return registry

    def test_diff_snapshots_ships_only_changes(self):
        registry = self._child_registry()
        first = registry.snapshot()
        delta = diff_snapshots({}, first)
        assert delta["frames_total"]["cells"] == [
            {"labels": {"state": "completed"}, "inc": 3.0}
        ]
        assert delta["queue_depth"]["cells"] == [{"labels": {}, "set": 4.0}]
        assert delta["latency_seconds"]["cells"] == [
            {"labels": {}, "count": 2.0, "sum": 1.0}
        ]
        # Nothing changed since: the next cadence ships nothing at all.
        assert diff_snapshots(first, registry.snapshot()) == {}
        registry.counter("frames_total").labels(state="completed").inc()
        next_delta = diff_snapshots(first, registry.snapshot())
        assert next_delta["frames_total"]["cells"] == [
            {"labels": {"state": "completed"}, "inc": 1.0}
        ]
        assert "queue_depth" not in next_delta  # gauge level unchanged

    def test_merge_delta_applies_extra_labels(self):
        child = self._child_registry()
        parent = MetricsRegistry()
        parent.merge_delta(
            diff_snapshots({}, child.snapshot()),
            extra_labels={"shard": "0", "pid": "123", "generation": "0"},
        )
        snapshot = parent.snapshot()
        (counter_cell,) = snapshot["frames_total"]["samples"]
        assert counter_cell["labels"] == {
            "state": "completed", "shard": "0", "pid": "123", "generation": "0",
        }
        assert counter_cell["value"] == 3.0
        (gauge_cell,) = snapshot["queue_depth"]["samples"]
        assert gauge_cell["value"] == 4.0
        (histogram_cell,) = snapshot["latency_seconds"]["samples"]
        assert histogram_cell["count"] == 2.0
        assert histogram_cell["sum"] == 1.0

    def test_repeated_deltas_accumulate_counters(self):
        child = self._child_registry()
        parent = MetricsRegistry()
        mark: dict = {}
        for _ in range(2):
            current = child.snapshot()
            parent.merge_delta(
                diff_snapshots(mark, current), extra_labels={"shard": "1"}
            )
            mark = current
            child.counter("frames_total").labels(state="completed").inc(2)
        parent.merge_delta(diff_snapshots(mark, child.snapshot()), {"shard": "1"})
        (cell,) = parent.snapshot()["frames_total"]["samples"]
        assert cell["value"] == 7.0  # 3 + 2 + 2, no double counting

    def test_respawn_generations_stay_distinct_label_sets(self):
        parent = MetricsRegistry()
        for generation in ("0", "1"):
            child = self._child_registry()
            parent.merge_delta(
                diff_snapshots({}, child.snapshot()),
                extra_labels={"shard": "0", "generation": generation},
            )
        cells = parent.snapshot()["frames_total"]["samples"]
        generations = {cell["labels"]["generation"] for cell in cells}
        assert generations == {"0", "1"}

    def test_unknown_family_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            MetricsRegistry().merge_delta({"x": {"type": "wat", "cells": []}})

    def test_merged_summary_renders_in_prometheus_text(self):
        parent = MetricsRegistry()
        parent.merge_delta(
            diff_snapshots({}, self._child_registry().snapshot()),
            extra_labels={"shard": "0"},
        )
        text = to_prometheus_text(parent.snapshot())
        assert validate_prometheus_text(text) == []
        assert 'latency_seconds_count{shard="0"} 2' in text


# -- multi-process Chrome trace shape ------------------------------------------
class TestChromeFleetShape:
    def _fleet_events(self) -> list[SpanEvent]:
        rebased_child = SpanEvent(
            name="serving/service", kind="span", trace_id=(1 << 32) + 1,
            span_id=(1 << 32) + 2, parent_id=(1 << 32) + 1,
            start_s=1.0, duration_s=0.01, stream_id=3, frame_index=0,
            shard_id=0, attrs={"os_pid": 4242, "generation": 0},
        )
        supervisor = SpanEvent(
            name="supervisor/crash", kind="span", trace_id=0, span_id=9,
            parent_id=None, start_s=1.5, duration_s=0.2, shard_id=0,
            attrs={"fault": "kill-replica"},
        )
        decision = SpanEvent(
            name="cluster/crash", kind="decision", trace_id=0, span_id=10,
            parent_id=None, start_s=1.5, duration_s=0.0, shard_id=0, attrs={},
        )
        return [rebased_child, supervisor, decision]

    def test_os_pid_events_become_real_chrome_processes(self):
        payload = to_chrome_trace(self._fleet_events())
        assert validate_chrome_trace(payload) == []
        records = payload["traceEvents"]
        metadata = [r for r in records if r["ph"] == "M"]
        names = {
            (r["pid"], r["args"]["name"])
            for r in metadata if r["name"] == "process_name"
        }
        assert (4242, "shard 0 worker (pid 4242, gen 0)") in names
        assert any(label.startswith("control plane") for _, label in names)
        child = next(r for r in records if r["name"] == "serving/service")
        assert child["pid"] == 4242 and child["tid"] == 3
        crash = next(r for r in records if r["name"] == "supervisor/crash")
        assert crash["pid"] == 0  # control-plane lane keeps the shard mapping

    def test_single_process_trace_keeps_plain_shape(self):
        tracer = Tracer(TelemetryConfig(enabled=True))
        context = tracer.begin_trace(stream_id=1, frame_index=0, shard_id=0, now=0.0)
        tracer.emit_span("serving/service", context, 0.0, 0.01)
        payload = to_chrome_trace(tracer.events())
        assert validate_chrome_trace(payload) == []
        assert all(r["ph"] != "M" for r in payload["traceEvents"])
        assert {r["pid"] for r in payload["traceEvents"]} == {0}


# -- cluster decision events ---------------------------------------------------
class TestClusterTracing:
    def _facade(self, cluster: ClusterConfig) -> api.Cluster:
        return api.Cluster(
            cluster=cluster,
            serving=SERVING,
            adascale=ADA,
            service_model=analytic_service_model(ADA),
        )

    def test_traced_run_reconstructs_frame_lifecycles(self):
        facade = self._facade(ClusterConfig(num_shards=2))
        report = facade.run_scenario(
            ScenarioConfig(
                name="flash_crowd", duration_s=4.0, num_streams=4, rate_fps=20.0
            ),
            telemetry=TelemetryConfig(enabled=True, ring_capacity=1 << 16),
        )
        assert report.trace_events
        assert report.to_dict()["trace_event_count"] == len(report.trace_events)
        by_trace: dict[int, set[str]] = {}
        for event in report.trace_events:
            if event.trace_id > 0:
                by_trace.setdefault(event.trace_id, set()).add(event.name)
        lifecycle = {
            "serving/admit",
            "serving/queue_wait",
            "serving/service",
            "serving/complete_frame",
        }
        complete = [names for names in by_trace.values() if lifecycle <= names]
        assert len(complete) >= report.completed > 0
        assert active_tracer() is None  # facade deactivated its tracer

    def test_governor_decisions_appear_as_events(self):
        cluster = ClusterConfig(num_shards=1)
        facade = self._facade(cluster)
        scenario = ScenarioConfig(
            name="slo_surge", duration_s=10.0, num_streams=8, rate_fps=30.0,
            peak_multiplier=8.0, seed=4,
        )
        report = facade.run_scenario(
            scenario, telemetry=TelemetryConfig(enabled=True, ring_capacity=1 << 18)
        )
        decisions = [e for e in report.trace_events if e.kind == "decision"]
        assert report.timeline  # the surge must force control actions
        assert len(decisions) == len(report.timeline)
        for event, action in zip(decisions, report.timeline):
            assert event.name == f"cluster/{action.action}"
            assert event.start_s == pytest.approx(action.time_s)
            assert event.attrs["old"] == action.old
            assert event.attrs["new"] == action.new
            assert event.attrs["reason"] == action.reason

    def test_untraced_run_attaches_no_events(self):
        facade = self._facade(ClusterConfig(num_shards=1))
        report = facade.run_scenario(
            ScenarioConfig(name="steady", duration_s=2.0, num_streams=2, rate_fps=10.0)
        )
        assert report.trace_events == ()


# -- real serving stack --------------------------------------------------------
class TestServerTracing:
    def test_serve_load_traces_full_frame_lifecycle(self, micro_bundle):
        serving = ServingConfig(num_workers=2, max_batch_size=2, queue_capacity=16)
        with api.Server(micro_bundle, serving=serving) as server:
            report = server.serve_load(
                streams=2,
                frames_per_stream=3,
                rate_fps=100.0,
                seed=1,
                telemetry=TelemetryConfig(enabled=True, ring_capacity=1 << 14),
            )
        assert active_tracer() is None
        events = report.trace_events
        assert events
        names = {event.name for event in events}
        # Detector stage spans (the profiler bridge) appear for real workers.
        assert "serving/plan" in names
        assert "serving/backbone_batch" in names
        by_trace: dict[int, set[str]] = {}
        for event in events:
            if event.trace_id > 0:
                by_trace.setdefault(event.trace_id, set()).add(event.name)
        lifecycle = {
            "serving/admit",
            "serving/queue_wait",
            "serving/service",
            "serving/complete_frame",
        }
        complete = [trace for trace, seen in by_trace.items() if lifecycle <= seen]
        completed = sum(stream.completed for stream in report.streams)
        assert len(complete) >= completed > 0
        # Completions carry the adaptive-scale decision of the frame.
        completions = [e for e in events if e.name == "serving/complete_frame"]
        assert all("scale_used" in event.attrs for event in completions)
        assert all(event.attrs["latency_ms"] > 0.0 for event in completions)

    def test_serve_load_without_telemetry_emits_nothing(self, micro_bundle):
        serving = ServingConfig(num_workers=1, max_batch_size=2, queue_capacity=8)
        with api.Server(micro_bundle, serving=serving) as server:
            report = server.serve_load(streams=1, frames_per_stream=2)
        assert report.trace_events == ()

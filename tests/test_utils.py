"""Tests for repro.utils (seeding, timers, registry, checkpoints, logging)."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.utils import (
    Registry,
    Timer,
    WallClock,
    get_logger,
    load_params,
    new_rng,
    save_params,
    seed_everything,
)
from repro.utils.checkpoint import load_json, save_json
from repro.utils.seeding import spawn_rngs


class TestSeeding:
    def test_seed_everything_returns_generator(self):
        rng = seed_everything(123)
        assert isinstance(rng, np.random.Generator)

    def test_seed_everything_is_reproducible(self):
        a = seed_everything(5).normal(size=4)
        b = seed_everything(5).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_new_rng_independent_streams(self):
        a = new_rng(1).normal(size=8)
        b = new_rng(2).normal(size=8)
        assert not np.allclose(a, b)

    def test_spawn_rngs_count(self):
        rngs = spawn_rngs(0, 5)
        assert len(rngs) == 5

    def test_spawn_rngs_streams_differ(self):
        rngs = spawn_rngs(0, 2)
        assert not np.allclose(rngs[0].normal(size=8), rngs[1].normal(size=8))

    def test_spawn_rngs_deterministic(self):
        first = spawn_rngs(3, 2)[1].normal(size=4)
        second = spawn_rngs(3, 2)[1].normal(size=4)
        np.testing.assert_array_equal(first, second)

    def test_spawn_rngs_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTimer:
    def test_wallclock_measures_nonnegative(self):
        with WallClock() as clock:
            sum(range(100))
        assert clock.elapsed >= 0.0

    def test_add_and_mean(self):
        timer = Timer()
        timer.add("step", 0.1)
        timer.add("step", 0.3)
        assert timer.mean_ms("step") == pytest.approx(200.0)

    def test_negative_duration_rejected(self):
        timer = Timer()
        with pytest.raises(ValueError):
            timer.add("bad", -1.0)

    def test_mean_of_unknown_name_raises(self):
        with pytest.raises(KeyError):
            Timer().mean_ms("missing")

    def test_total_and_count(self):
        timer = Timer()
        timer.add("x", 0.5)
        timer.add("x", 0.25)
        assert timer.total_s("x") == pytest.approx(0.75)
        assert timer.count("x") == 2
        assert timer.total_s("unknown") == 0.0
        assert timer.count("unknown") == 0

    def test_context_manager_records(self):
        timer = Timer()
        with timer.time("block"):
            sum(range(10))
        assert timer.count("block") == 1

    def test_merge(self):
        a = Timer()
        b = Timer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.count("x") == 2
        assert a.count("y") == 1


class TestRegistry:
    def test_register_and_get(self):
        registry: Registry[str] = Registry("thing")
        registry.register("a", "value-a")
        assert registry.get("a") == "value-a"

    def test_register_as_decorator(self):
        registry: Registry[object] = Registry("builder")

        @registry.register("make")
        def make():
            return 42

        assert registry.get("make")() == 42

    def test_duplicate_registration_raises(self):
        registry: Registry[str] = Registry("thing")
        registry.register("a", "x")
        with pytest.raises(KeyError):
            registry.register("a", "y")

    def test_unknown_name_error_lists_known(self):
        registry: Registry[str] = Registry("thing")
        registry.register("alpha", "x")
        with pytest.raises(KeyError, match="alpha"):
            registry.get("beta")

    def test_contains_len_names(self):
        registry: Registry[str] = Registry("thing")
        registry.register("b", "x")
        registry.register("a", "y")
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2
        assert registry.names() == ["a", "b"]


class TestCheckpoint:
    def test_save_and_load_params_roundtrip(self, tmp_path):
        params = {"w": np.arange(6, dtype=np.float32).reshape(2, 3), "b": np.zeros(3)}
        save_params(tmp_path / "model.npz", params)
        loaded = load_params(tmp_path / "model.npz")
        assert set(loaded) == {"w", "b"}
        np.testing.assert_array_equal(loaded["w"], params["w"])

    def test_load_params_appends_npz_suffix(self, tmp_path):
        save_params(tmp_path / "model.npz", {"x": np.ones(2)})
        loaded = load_params(tmp_path / "model")
        np.testing.assert_array_equal(loaded["x"], np.ones(2))

    def test_save_json_roundtrip_with_numpy_scalars(self, tmp_path):
        payload = {"value": np.float32(1.5), "vector": np.arange(3)}
        save_json(tmp_path / "out.json", payload)
        loaded = load_json(tmp_path / "out.json")
        assert loaded["value"] == pytest.approx(1.5)
        assert loaded["vector"] == [0, 1, 2]

    def test_save_json_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "nested" / "dir" / "x.json", {"a": 1})
        assert path.exists()


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("unit-test")
        assert logger.name == "repro.unit-test"

    def test_get_logger_accepts_prequalified_name(self):
        logger = get_logger("repro.core.pipeline")
        assert logger.name == "repro.core.pipeline"

    def test_root_handler_installed_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

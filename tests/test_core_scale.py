"""Tests for the scale set, scale-target coding (Eq. 3) and the scale regressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RegressorConfig
from repro.core import ScaleRegressor, ScaleSet, decode_scale, encode_scale_target
from repro.core.scale_coding import decode_scale_float
from repro.nn import mse_loss
from repro.nn.optim import Adam


class TestScaleSet:
    def test_sorted_descending(self):
        scale_set = ScaleSet((240, 600, 360, 480))
        assert scale_set.scales == (600, 480, 360, 240)

    def test_min_max(self):
        scale_set = ScaleSet((600, 480, 360, 240))
        assert scale_set.max_scale == 600
        assert scale_set.min_scale == 240

    def test_membership_and_len(self):
        scale_set = ScaleSet((128, 96))
        assert 96 in scale_set and 50 not in scale_set
        assert len(scale_set) == 2

    def test_clip(self):
        scale_set = ScaleSet((128, 32))
        assert scale_set.clip(200) == 128
        assert scale_set.clip(10) == 32
        assert scale_set.clip(64) == 64

    def test_nearest(self):
        scale_set = ScaleSet((128, 96, 72, 48))
        assert scale_set.nearest(100) == 96
        assert scale_set.nearest(1000) == 128

    def test_ratio_span(self):
        assert ScaleSet((600, 128)).ratio_span() == pytest.approx(600 / 128)

    def test_from_sequence(self):
        assert ScaleSet.from_sequence([32.0, 64.0]).scales == (64, 32)

    def test_invalid_sets_rejected(self):
        with pytest.raises(ValueError):
            ScaleSet(())
        with pytest.raises(ValueError):
            ScaleSet((0, 10))
        with pytest.raises(ValueError):
            ScaleSet((10, 10))


class TestScaleCoding:
    def test_paper_normalisation_bounds(self):
        """Eq. 3 maps the extreme ratios onto [-1, 1]."""
        # m = m_max, m_opt = m_min → smallest reachable ratio → -1.
        assert encode_scale_target(600, 128, 128, 600) == pytest.approx(-1.0)
        # m = m_min, m_opt = m_max → largest reachable ratio → +1.
        assert encode_scale_target(128, 600, 128, 600) == pytest.approx(1.0)

    def test_no_change_is_not_zero_in_general(self):
        """Keeping the same scale maps near the lower end of [-1, 1] (the paper's
        coding is based on the ratio m_opt/m, not its logarithm)."""
        target = encode_scale_target(360, 360, 128, 600)
        assert -1.0 < target < 0.0

    def test_decode_inverts_encode(self):
        target = encode_scale_target(480, 240, 128, 600)
        assert decode_scale(target, base_size=480, min_scale=128, max_scale=600) == 240

    def test_decode_clips_to_bounds(self):
        assert decode_scale(10.0, base_size=600, min_scale=128, max_scale=600) == 600
        assert decode_scale(-10.0, base_size=600, min_scale=128, max_scale=600) == 128

    def test_decode_rounds_to_int(self):
        result = decode_scale(0.123, base_size=300, min_scale=128, max_scale=600)
        assert isinstance(result, int)

    def test_decode_float_unclipped(self):
        raw = decode_scale_float(2.0, base_size=600, min_scale=128, max_scale=600)
        assert raw > 600

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            encode_scale_target(0, 100, 32, 128)
        with pytest.raises(ValueError):
            encode_scale_target(100, 100, 128, 128)
        with pytest.raises(ValueError):
            decode_scale(0.0, base_size=0, min_scale=32, max_scale=128)

    @settings(max_examples=50, deadline=None)
    @given(
        current=st.integers(32, 128),
        optimal=st.integers(32, 128),
    )
    def test_roundtrip_property(self, current, optimal):
        """decode(encode(m, m_opt), base=m) == m_opt for all in-range scales."""
        target = encode_scale_target(current, optimal, 32, 128)
        assert decode_scale(target, base_size=current, min_scale=32, max_scale=128) == optimal

    @settings(max_examples=30, deadline=None)
    @given(current=st.integers(32, 128), optimal=st.integers(32, 128))
    def test_target_within_unit_interval_for_inset_scales(self, current, optimal):
        target = encode_scale_target(current, optimal, 32, 128)
        assert -1.0 - 1e-6 <= target <= 1.0 + 1e-6

    def test_monotonicity_in_optimal_scale(self):
        """A larger optimal scale must encode to a larger target."""
        low = encode_scale_target(96, 48, 32, 128)
        high = encode_scale_target(96, 96, 32, 128)
        assert high > low


class TestScaleRegressor:
    def test_forward_returns_scalar_per_sample(self, rng):
        regressor = ScaleRegressor(in_channels=16, seed=0)
        features = rng.normal(size=(1, 16, 6, 8)).astype(np.float32)
        out = regressor(features)
        assert out.shape == (1,)

    def test_prediction_independent_of_feature_map_size(self, rng):
        """Global pooling makes the module usable at any input scale."""
        regressor = ScaleRegressor(in_channels=8, seed=0)
        small = regressor(rng.normal(size=(1, 8, 4, 5)).astype(np.float32))
        large = regressor(rng.normal(size=(1, 8, 12, 16)).astype(np.float32))
        assert small.shape == large.shape == (1,)

    def test_table3_kernel_variants_build(self, rng):
        features = rng.normal(size=(1, 8, 6, 6)).astype(np.float32)
        for kernels in [(1,), (1, 3), (1, 3, 5)]:
            regressor = ScaleRegressor(8, RegressorConfig(kernel_sizes=kernels), seed=0)
            assert regressor(features).shape == (1,)
            assert len(regressor.streams) == len(kernels)

    def test_parameter_count_grows_with_streams(self):
        single = ScaleRegressor(8, RegressorConfig(kernel_sizes=(1,)), seed=0)
        triple = ScaleRegressor(8, RegressorConfig(kernel_sizes=(1, 3, 5)), seed=0)
        assert triple.num_parameters() > single.num_parameters()

    def test_overhead_flops_small_relative_to_detector(self, micro_bundle):
        regressor = micro_bundle.regressor
        detector = micro_bundle.ms_detector
        overhead = regressor.overhead_flops(8, 10)
        total = detector.estimate_flops(64, 80)
        assert overhead / total < 0.25

    def test_wrong_channel_count_raises(self, rng):
        regressor = ScaleRegressor(in_channels=16, seed=0)
        with pytest.raises(ValueError):
            regressor(rng.normal(size=(1, 8, 6, 6)).astype(np.float32))

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(ValueError):
            ScaleRegressor(8, RegressorConfig(kernel_sizes=()), seed=0)

    def test_gradient_check_through_regressor(self, rng):
        regressor = ScaleRegressor(in_channels=4, config=RegressorConfig(kernel_sizes=(1, 3), stream_channels=3), seed=0)
        features = rng.normal(size=(1, 4, 5, 5)).astype(np.float32)
        out = regressor(features)
        grad_out = np.array([1.0], dtype=np.float32)
        grad_features = regressor.backward(grad_out)
        eps = 1e-2
        for index in [(0, 0, 2, 2), (0, 3, 0, 4)]:
            shifted = features.copy()
            shifted[index] += eps
            numeric = float((regressor(shifted) - out)[0] / eps)
            assert grad_features[index] == pytest.approx(numeric, rel=0.1, abs=1e-3)

    def test_regressor_can_fit_synthetic_target(self, rng):
        """The regressor learns a simple function of the features (sanity of Eq. 4 training)."""
        regressor = ScaleRegressor(in_channels=4, config=RegressorConfig(kernel_sizes=(1,), stream_channels=4), seed=0)
        optimizer = Adam(regressor.parameters(), learning_rate=0.02)
        for _ in range(200):
            features = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
            target = np.array([float(np.tanh(features[0, 0].mean()))], dtype=np.float32)
            prediction = regressor(features)
            loss, grad, _ = mse_loss(prediction, target)
            optimizer.zero_grad()
            regressor.backward(grad)
            optimizer.step()
        errors = []
        for _ in range(20):
            features = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
            target = float(np.tanh(features[0, 0].mean()))
            errors.append(abs(regressor.predict(features) - target))
        assert float(np.mean(errors)) < 0.25

    def test_predict_returns_python_float(self, rng):
        regressor = ScaleRegressor(in_channels=8, seed=0)
        value = regressor.predict(rng.normal(size=(1, 8, 4, 4)).astype(np.float32))
        assert isinstance(value, float)

    def test_state_dict_roundtrip(self, rng):
        source = ScaleRegressor(in_channels=8, seed=0)
        clone = ScaleRegressor(in_channels=8, seed=1)
        clone.load_state_dict(source.state_dict())
        features = rng.normal(size=(1, 8, 4, 4)).astype(np.float32)
        assert source.predict(features) == pytest.approx(clone.predict(features))

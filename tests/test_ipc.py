"""Wire-protocol tests for the framed cluster IPC layer.

Everything here runs without a process boundary: :class:`BufferStream`
plays the transport, including the adversarial cases (bit flips, truncated
frames, hostile length fields, single-byte partial reads).  One test rides
the real :class:`PipeStream` over a ``multiprocessing.Pipe`` to prove the
chunk-reassembly path against the actual transport.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.cluster.ipc import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER,
    MAGIC,
    PROTOCOL_VERSION,
    BufferStream,
    ChannelClosed,
    Done,
    FrameCorrupt,
    FramedChannel,
    FrameTooLarge,
    FrameTruncated,
    Hello,
    OpenStream,
    PipeStream,
    SetScaleCap,
    Shutdown,
    Submit,
    Telemetry,
    decode_frame,
    encode_frame,
)


def _sample_messages():
    image = np.arange(2 * 3 * 4, dtype=np.float32).reshape(3, 4, 2)
    boxes = np.array([[1.0, 2.0, 10.0, 12.0]], dtype=np.float64)
    return [
        Hello(shard_id=3, pid=4242),
        OpenStream(stream_id=7, initial_scale=48),
        Submit(stream_id=7, frame_index=0, image=image),
        SetScaleCap(scale_cap=None),
        Done(
            stream_id=7,
            frame_index=0,
            status="completed",
            scale_used=48,
            next_scale=32,
            current_scale=32,
            is_key_frame=False,
            queue_wait_s=0.01,
            service_s=0.02,
            latency_s=0.03,
            boxes=boxes,
            scores=np.array([0.9]),
            class_ids=np.array([2]),
        ),
        Telemetry(queue_depth=2, outstanding=4, max_batch_size=4,
                  batch_sizes=(1, 2), queue_depths=(0, 3), final=False),
        Shutdown(cancel_pending=True),
    ]


class TestFrameCodec:
    def test_round_trip(self):
        payload = b"adascale cluster payload"
        assert decode_frame(encode_frame(payload)) == payload

    def test_empty_payload_round_trips(self):
        assert decode_frame(encode_frame(b"")) == b""

    def test_single_bit_flip_anywhere_is_detected(self):
        frame = bytearray(encode_frame(b"detect me"))
        for position in range(len(frame)):
            if position == 3:
                # The header's alignment pad byte carries no information and
                # is (by design) not covered by any check.
                continue
            corrupted = bytearray(frame)
            corrupted[position] ^= 0x40
            with pytest.raises((FrameCorrupt, FrameTooLarge, FrameTruncated)):
                decode_frame(bytes(corrupted))

    def test_truncated_header_and_truncated_payload(self):
        frame = encode_frame(b"0123456789")
        with pytest.raises(FrameTruncated):
            decode_frame(frame[: HEADER.size - 1])
        with pytest.raises(FrameTruncated):
            decode_frame(frame[:-1])

    def test_sender_refuses_oversized_payload(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(b"x" * 100, max_bytes=99)

    def test_receiver_rejects_hostile_length_before_reading_payload(self):
        # A corrupt length field must be bounced by the header check alone —
        # long before any multi-GiB allocation could happen.
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, 2**31, 0)
        with pytest.raises(FrameTooLarge):
            decode_frame(header)

    def test_wrong_magic_and_wrong_version(self):
        payload = b"hi"
        import zlib

        bad_magic = HEADER.pack(0xBEEF, PROTOCOL_VERSION, len(payload),
                                zlib.crc32(payload)) + payload
        with pytest.raises(FrameCorrupt, match="magic"):
            decode_frame(bad_magic)
        bad_version = HEADER.pack(MAGIC, PROTOCOL_VERSION + 1, len(payload),
                                  zlib.crc32(payload)) + payload
        with pytest.raises(FrameCorrupt, match="version"):
            decode_frame(bad_version)


class TestFramedChannel:
    @pytest.mark.parametrize("chunk", [None, 1, 3])
    def test_message_round_trip_with_partial_reads(self, chunk):
        # chunk=1 forces the worst-case transport: every read returns one
        # byte, so the channel's reassembly loop does all the work.
        stream = BufferStream(chunk=chunk)
        channel = FramedChannel(stream)
        for message in _sample_messages():
            channel.send(message)
        for expected in _sample_messages():
            received = channel.recv()
            assert type(received) is type(expected)
            if isinstance(expected, Submit):
                np.testing.assert_array_equal(received.image, expected.image)
            elif isinstance(expected, Done):
                np.testing.assert_array_equal(received.boxes, expected.boxes)
                assert received.current_scale == expected.current_scale
            else:
                assert received == expected

    def test_eof_at_boundary_is_channel_closed(self):
        channel = FramedChannel(BufferStream())
        with pytest.raises(ChannelClosed):
            channel.recv()

    def test_eof_mid_frame_is_truncation(self):
        sender = FramedChannel(BufferStream())
        sender.send(Hello(shard_id=0, pid=1))
        wire = bytes(sender.stream._buffer)
        # Peer died mid-send: deliver all but the last byte.
        channel = FramedChannel(BufferStream(wire[:-1]))
        with pytest.raises(FrameTruncated):
            channel.recv()

    def test_corrupt_payload_crc_detected_end_to_end(self):
        sender = FramedChannel(BufferStream())
        sender.send(Telemetry(queue_depth=5))
        wire = bytearray(sender.stream._buffer)
        wire[-1] ^= 0xFF
        channel = FramedChannel(BufferStream(bytes(wire)))
        with pytest.raises(FrameCorrupt):
            channel.recv()

    def test_send_refuses_oversized_message(self):
        channel = FramedChannel(BufferStream(), max_frame_bytes=128)
        with pytest.raises(FrameTooLarge):
            channel.send(Submit(stream_id=0, frame_index=0,
                                image=np.zeros((64, 64), dtype=np.float64)))

    def test_recv_refuses_oversized_frame(self):
        # The sender's bound is generous, the receiver's is tight: the
        # receiver must reject from the header without touching the payload.
        sender = FramedChannel(BufferStream())
        sender.send(Submit(stream_id=0, frame_index=0,
                           image=np.zeros((64, 64), dtype=np.float64)))
        receiver = FramedChannel(
            BufferStream(bytes(sender.stream._buffer)), max_frame_bytes=128
        )
        with pytest.raises(FrameTooLarge):
            receiver.recv()

    def test_back_to_back_frames_with_chunked_reads(self):
        stream = BufferStream(chunk=5)
        channel = FramedChannel(stream)
        for index in range(20):
            channel.send(Done(stream_id=index, frame_index=index, status="completed"))
        for index in range(20):
            message = channel.recv()
            assert (message.stream_id, message.frame_index) == (index, index)
        with pytest.raises(ChannelClosed):
            channel.recv()

    def test_default_bound_matches_module_constant(self):
        assert FramedChannel(BufferStream()).max_frame_bytes == DEFAULT_MAX_FRAME_BYTES


class TestPipeStream:
    def test_multi_message_buffering_over_real_pipe(self):
        # One send_bytes chunk != one frame: write several frames, then read
        # them back through PipeStream's chunk reassembly.
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        try:
            sender = FramedChannel(PipeStream(child_conn))
            receiver = FramedChannel(PipeStream(parent_conn))
            messages = _sample_messages()
            for message in messages:
                sender.send(message)
            assert receiver.poll(0.5)
            received = [receiver.recv() for _ in messages]
            assert [type(m) for m in received] == [type(m) for m in messages]
            np.testing.assert_array_equal(received[2].image, messages[2].image)
        finally:
            parent_conn.close()
            child_conn.close()

    def test_closed_peer_surfaces_as_channel_closed(self):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        child_conn.close()
        channel = FramedChannel(PipeStream(parent_conn))
        try:
            assert channel.poll(0.1)  # dead peer is "readable"
            with pytest.raises(ChannelClosed):
                channel.recv()
        finally:
            parent_conn.close()

    def test_write_to_closed_peer_raises_channel_closed(self):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        child_conn.close()
        stream = PipeStream(parent_conn)
        try:
            with pytest.raises(ChannelClosed):
                # The first write may land in the OS buffer; keep writing
                # until the broken pipe surfaces.
                for _ in range(1024):
                    stream.write(b"x" * 4096)
        finally:
            parent_conn.close()


def test_messages_pickle_stably():
    """The vocabulary must survive pickling — it IS the wire format."""
    for message in _sample_messages():
        clone = pickle.loads(pickle.dumps(message, pickle.HIGHEST_PROTOCOL))
        assert type(clone) is type(message)

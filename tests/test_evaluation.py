"""Tests for evaluation: matching, AP/mAP, PR curves, TP/FP counts, runtime, reporting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    DetectionRecord,
    RuntimeStats,
    average_precision,
    count_tp_fp,
    evaluate_detections,
    format_table,
    match_detections,
    per_class_table,
    precision_recall_curve,
    profile_flops,
)
from repro.evaluation.reporting import format_float


def make_record(det, scores, classes, gt, gt_labels, frame=(0, 0)) -> DetectionRecord:
    return DetectionRecord(
        boxes=np.asarray(det, dtype=np.float32).reshape(-1, 4),
        scores=np.asarray(scores, dtype=np.float32),
        class_ids=np.asarray(classes, dtype=np.int64),
        gt_boxes=np.asarray(gt, dtype=np.float32).reshape(-1, 4),
        gt_labels=np.asarray(gt_labels, dtype=np.int64),
        frame_id=frame,
    )


class TestMatchDetections:
    def test_perfect_detection_is_tp(self):
        match = match_detections(
            np.array([[0, 0, 10, 10]]), np.array([0.9]), np.array([[0, 0, 10, 10]])
        )
        assert match.is_tp.tolist() == [True]
        assert match.num_gt == 1

    def test_each_gt_matched_at_most_once(self):
        dets = np.array([[0, 0, 10, 10], [1, 1, 11, 11]])
        match = match_detections(dets, np.array([0.9, 0.8]), np.array([[0, 0, 10, 10]]))
        assert match.is_tp.sum() == 1
        # The higher-scoring detection claims the ground truth.
        assert match.is_tp[0]

    def test_low_iou_is_fp(self):
        match = match_detections(
            np.array([[50, 50, 60, 60]]), np.array([0.9]), np.array([[0, 0, 10, 10]])
        )
        assert match.is_tp.tolist() == [False]

    def test_results_sorted_by_score(self):
        dets = np.array([[0, 0, 10, 10], [20, 20, 30, 30]])
        match = match_detections(dets, np.array([0.3, 0.8]), np.zeros((0, 4)))
        assert match.scores[0] == pytest.approx(0.8)

    def test_empty_detections(self):
        match = match_detections(np.zeros((0, 4)), np.zeros(0), np.array([[0, 0, 5, 5]]))
        assert match.is_tp.shape == (0,)
        assert match.num_gt == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            match_detections(np.zeros((1, 4)), np.zeros(2), np.zeros((0, 4)))


class TestAveragePrecision:
    def test_perfect_ranking_gives_ap_one(self):
        ap, _, _ = average_precision(np.array([True, True]), np.array([0.9, 0.8]), num_gt=2)
        assert ap == pytest.approx(1.0)

    def test_all_false_positives_gives_zero(self):
        ap, _, _ = average_precision(np.array([False, False]), np.array([0.9, 0.8]), num_gt=2)
        assert ap == 0.0

    def test_missing_detections_bound_ap_by_recall(self):
        ap, _, _ = average_precision(np.array([True]), np.array([0.9]), num_gt=2)
        assert ap == pytest.approx(0.5)

    def test_fp_before_tp_lowers_ap(self):
        good, _, _ = average_precision(np.array([True, False]), np.array([0.9, 0.8]), num_gt=1)
        bad, _, _ = average_precision(np.array([False, True]), np.array([0.9, 0.8]), num_gt=1)
        assert good > bad

    def test_zero_gt_gives_zero(self):
        ap, precision, recall = average_precision(np.array([True]), np.array([0.5]), num_gt=0)
        assert ap == 0.0 and precision.size == 0 and recall.size == 0

    def test_negative_gt_raises(self):
        with pytest.raises(ValueError):
            average_precision(np.zeros(0, bool), np.zeros(0), num_gt=-1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=20), st.integers(1, 20), st.integers(0, 99))
    def test_ap_bounded_in_unit_interval(self, flags, num_gt, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(len(flags)).astype(np.float32)
        num_gt = max(num_gt, int(np.sum(flags)))
        ap, _, _ = average_precision(np.asarray(flags), scores, num_gt)
        assert 0.0 <= ap <= 1.0 + 1e-9


class TestEvaluateDetections:
    def test_perfect_detector_scores_full_map(self):
        record = make_record(
            [[0, 0, 10, 10], [20, 20, 40, 40]],
            [0.9, 0.8],
            [0, 1],
            [[0, 0, 10, 10], [20, 20, 40, 40]],
            [0, 1],
        )
        result = evaluate_detections([record], ["a", "b"])
        assert result.mean_ap == pytest.approx(1.0)
        assert result.ap_of("a") == pytest.approx(1.0)

    def test_wrong_class_counts_as_fp(self):
        record = make_record([[0, 0, 10, 10]], [0.9], [1], [[0, 0, 10, 10]], [0])
        result = evaluate_detections([record], ["a", "b"])
        assert result.per_class_ap["a"] == 0.0

    def test_classes_without_gt_excluded_from_mean(self):
        record = make_record([[0, 0, 10, 10]], [0.9], [0], [[0, 0, 10, 10]], [0])
        result = evaluate_detections([record], ["a", "b", "c"])
        assert result.mean_ap == pytest.approx(1.0)
        assert result.num_gt["b"] == 0

    def test_accumulates_across_frames(self):
        hit = make_record([[0, 0, 10, 10]], [0.9], [0], [[0, 0, 10, 10]], [0], frame=(0, 0))
        miss = make_record(np.zeros((0, 4)), [], [], [[5, 5, 15, 15]], [0], frame=(0, 1))
        result = evaluate_detections([hit, miss], ["a"])
        assert result.per_class_ap["a"] == pytest.approx(0.5)
        assert result.num_frames == 2

    def test_empty_class_names_rejected(self):
        with pytest.raises(ValueError):
            evaluate_detections([], [])


class TestPRCurve:
    def _records(self):
        return [
            make_record(
                [[0, 0, 10, 10], [30, 30, 40, 40]],
                [0.9, 0.6],
                [0, 0],
                [[0, 0, 10, 10], [100, 100, 110, 110]],
                [0, 0],
            )
        ]

    def test_curve_values_bounded(self):
        curve = precision_recall_curve(self._records(), class_id=0, class_name="a")
        assert np.all(curve.precision <= 1.0) and np.all(curve.precision >= 0.0)
        assert np.all(curve.recall <= 1.0) and np.all(curve.recall >= 0.0)

    def test_recall_monotone_nondecreasing(self):
        curve = precision_recall_curve(self._records(), class_id=0, class_name="a")
        assert np.all(np.diff(curve.recall) >= -1e-9)

    def test_precision_at_recall(self):
        curve = precision_recall_curve(self._records(), class_id=0, class_name="a")
        assert curve.precision_at_recall(0.0) == pytest.approx(1.0)
        assert curve.precision_at_recall(1.0) == 0.0  # second GT never found

    def test_sample_returns_requested_points(self):
        curve = precision_recall_curve(self._records(), class_id=0, class_name="a")
        levels, values = curve.sample(num_points=5)
        assert levels.shape == (5,) and values.shape == (5,)

    def test_invalid_recall_level(self):
        curve = precision_recall_curve(self._records(), class_id=0, class_name="a")
        with pytest.raises(ValueError):
            curve.precision_at_recall(1.5)

    def test_ap_consistent_with_evaluate(self):
        records = self._records()
        curve = precision_recall_curve(records, class_id=0, class_name="a")
        result = evaluate_detections(records, ["a"])
        assert curve.ap == pytest.approx(result.per_class_ap["a"])


class TestTpFp:
    def test_counts_separate_tp_and_fp(self):
        record = make_record(
            [[0, 0, 10, 10], [50, 50, 60, 60]],
            [0.9, 0.8],
            [0, 0],
            [[0, 0, 10, 10]],
            [0],
        )
        counts = count_tp_fp([record], ["a"], score_threshold=0.5)
        assert counts.total_tp == 1
        assert counts.total_fp == 1

    def test_score_threshold_filters_low_confidence(self):
        record = make_record([[0, 0, 10, 10]], [0.2], [0], [[0, 0, 10, 10]], [0])
        counts = count_tp_fp([record], ["a"], score_threshold=0.5)
        assert counts.total_tp == 0 and counts.total_fp == 0

    def test_normalized_to_baseline(self):
        record = make_record(
            [[0, 0, 10, 10], [50, 50, 60, 60]], [0.9, 0.8], [0, 0], [[0, 0, 10, 10]], [0]
        )
        counts = count_tp_fp([record], ["a"])
        normalized = counts.normalized_to(counts)
        assert normalized == {"tp": 1.0, "fp": 1.0}

    def test_per_class_breakdown(self):
        record = make_record(
            [[0, 0, 10, 10], [20, 20, 30, 30]],
            [0.9, 0.9],
            [0, 1],
            [[0, 0, 10, 10], [20, 20, 30, 30]],
            [0, 1],
        )
        counts = count_tp_fp([record], ["a", "b"])
        assert counts.per_class_tp == {"a": 1, "b": 1}


class TestRuntime:
    def test_mean_median_fps(self):
        stats = RuntimeStats(name="x")
        for value in (0.01, 0.02, 0.03):
            stats.add(value)
        assert stats.mean_ms == pytest.approx(20.0)
        assert stats.median_ms == pytest.approx(20.0)
        assert stats.fps == pytest.approx(50.0)
        assert stats.count == 3

    def test_speedup_over(self):
        fast = RuntimeStats()
        slow = RuntimeStats()
        fast.add(0.01)
        slow.add(0.02)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_empty_stats_are_nan(self):
        stats = RuntimeStats()
        assert np.isnan(stats.mean_ms) and np.isnan(stats.fps)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RuntimeStats().add(-0.1)

    def test_profile_flops_decreases_with_scale(self, micro_bundle):
        detector = micro_bundle.ms_detector
        profile = profile_flops(detector, (64, 32), (64, 80), max_long_side=240)
        assert profile.flops_at(64) > profile.flops_at(32)
        relative = profile.relative_to(64)
        assert relative[64] == pytest.approx(1.0)
        assert relative[32] < 0.5

    def test_profile_flops_validates_scales(self, micro_bundle):
        with pytest.raises(ValueError):
            profile_flops(micro_bundle.ms_detector, (0,), (64, 80))

    def test_relative_to_unknown_scale_raises(self, micro_bundle):
        profile = profile_flops(micro_bundle.ms_detector, (64,), (64, 80))
        with pytest.raises(KeyError):
            profile.relative_to(128)


class TestReporting:
    def test_format_float(self):
        assert format_float(12.345) == "12.3"
        assert format_float(float("nan")) == "nan"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_requires_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_per_class_table_contains_methods_and_classes(self):
        table = per_class_table(
            methods={"SS/SS": {"cat": 0.5, "dog": 0.25}, "MS/AdaScale": {"cat": 0.6, "dog": 0.3}},
            class_names=["cat", "dog"],
            extra_columns={"mAP(%)": {"SS/SS": 37.5, "MS/AdaScale": 45.0}},
        )
        assert "SS/SS" in table and "MS/AdaScale" in table
        assert "cat" in table and "mAP(%)" in table
        assert "50.0" in table and "60.0" in table

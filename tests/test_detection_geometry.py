"""Tests for boxes, anchors, NMS and matching — including property-based tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    batched_nms,
    box_areas,
    clip_boxes,
    decode_boxes,
    encode_boxes,
    generate_anchors,
    generate_base_anchors,
    iou_matrix,
    match_boxes,
    nms,
    valid_boxes,
)
from repro.detection.boxes import box_centers, scale_boxes


def random_boxes(rng: np.random.Generator, count: int, limit: float = 100.0) -> np.ndarray:
    x1 = rng.uniform(0, limit * 0.8, count)
    y1 = rng.uniform(0, limit * 0.8, count)
    w = rng.uniform(1.0, limit * 0.3, count)
    h = rng.uniform(1.0, limit * 0.3, count)
    return np.stack([x1, y1, x1 + w, y1 + h], axis=1).astype(np.float32)


boxes_strategy = st.integers(0, 10_000).map(
    lambda seed: random_boxes(np.random.default_rng(seed), count=6)
)


class TestBoxBasics:
    def test_area(self):
        boxes = np.array([[0, 0, 2, 3], [1, 1, 1, 5]], dtype=np.float32)
        np.testing.assert_allclose(box_areas(boxes), [6.0, 0.0])

    def test_centers(self):
        boxes = np.array([[0, 0, 4, 2]], dtype=np.float32)
        np.testing.assert_allclose(box_centers(boxes), [[2.0, 1.0]])

    def test_empty_input(self):
        assert box_areas(np.zeros((0, 4))).shape == (0,)
        assert iou_matrix(np.zeros((0, 4)), np.zeros((3, 4))).shape == (0, 3)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            box_areas(np.zeros((2, 3)))

    def test_clip(self):
        boxes = np.array([[-5, -5, 200, 90]], dtype=np.float32)
        clipped = clip_boxes(boxes, image_height=80, image_width=100)
        np.testing.assert_allclose(clipped, [[0, 0, 100, 80]])

    def test_valid_boxes(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 0.5, 10]], dtype=np.float32)
        np.testing.assert_array_equal(valid_boxes(boxes, min_size=1.0), [True, False])

    def test_scale_boxes(self):
        boxes = np.array([[1, 2, 3, 4]], dtype=np.float32)
        np.testing.assert_allclose(scale_boxes(boxes, 2.0), [[2, 4, 6, 8]])
        with pytest.raises(ValueError):
            scale_boxes(boxes, 0.0)


class TestIoU:
    def test_identical_boxes(self):
        box = np.array([[0, 0, 10, 10]], dtype=np.float32)
        assert iou_matrix(box, box)[0, 0] == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0, 0, 10, 10]], dtype=np.float32)
        b = np.array([[20, 20, 30, 30]], dtype=np.float32)
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_known_overlap(self):
        a = np.array([[0, 0, 10, 10]], dtype=np.float32)
        b = np.array([[5, 0, 15, 10]], dtype=np.float32)
        assert iou_matrix(a, b)[0, 0] == pytest.approx(50.0 / 150.0)

    @settings(max_examples=30, deadline=None)
    @given(boxes_strategy, boxes_strategy)
    def test_iou_symmetric_and_bounded(self, boxes_a, boxes_b):
        matrix = iou_matrix(boxes_a, boxes_b)
        np.testing.assert_allclose(matrix, iou_matrix(boxes_b, boxes_a).T, rtol=1e-5)
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0 + 1e-6)

    @settings(max_examples=20, deadline=None)
    @given(boxes_strategy)
    def test_self_iou_diagonal_is_one(self, boxes):
        matrix = iou_matrix(boxes, boxes)
        np.testing.assert_allclose(np.diag(matrix), np.ones(len(boxes)), rtol=1e-5)


class TestEncodeDecode:
    def test_encode_zero_for_identical(self):
        boxes = np.array([[10, 10, 50, 40]], dtype=np.float32)
        np.testing.assert_allclose(encode_boxes(boxes, boxes), np.zeros((1, 4)), atol=1e-5)

    def test_decode_inverts_encode(self, rng):
        anchors = random_boxes(rng, 12)
        targets = random_boxes(rng, 12)
        deltas = encode_boxes(anchors, targets)
        recovered = decode_boxes(anchors, deltas)
        np.testing.assert_allclose(recovered, targets, rtol=1e-3, atol=1e-2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_encode_decode_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        anchors = random_boxes(rng, 5)
        targets = random_boxes(rng, 5)
        recovered = decode_boxes(anchors, encode_boxes(anchors, targets))
        np.testing.assert_allclose(recovered, targets, rtol=1e-2, atol=5e-2)

    def test_decode_clamps_extreme_deltas(self):
        anchors = np.array([[0, 0, 10, 10]], dtype=np.float32)
        wild = np.array([[0.0, 0.0, 100.0, 100.0]], dtype=np.float32)
        decoded = decode_boxes(anchors, wild)
        assert np.all(np.isfinite(decoded))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            encode_boxes(np.zeros((2, 4)), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            decode_boxes(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_empty_decode(self):
        assert decode_boxes(np.zeros((0, 4)), np.zeros((0, 4))).shape == (0, 4)


class TestAnchors:
    def test_base_anchor_count(self):
        anchors = generate_base_anchors((16, 32), (0.5, 1.0, 2.0))
        assert anchors.shape == (6, 4)

    def test_base_anchor_areas_match_sizes(self):
        anchors = generate_base_anchors((16,), (0.5, 1.0, 2.0))
        areas = box_areas(anchors)
        np.testing.assert_allclose(areas, [256.0] * 3, rtol=1e-4)

    def test_base_anchor_aspect_ratios(self):
        anchors = generate_base_anchors((32,), (2.0,))
        height = anchors[0, 3] - anchors[0, 1]
        width = anchors[0, 2] - anchors[0, 0]
        assert height / width == pytest.approx(2.0, rel=1e-4)

    def test_base_anchors_centred_at_origin(self):
        anchors = generate_base_anchors((16, 64), (1.0,))
        np.testing.assert_allclose(box_centers(anchors), np.zeros((2, 2)), atol=1e-5)

    def test_grid_anchor_count_and_layout(self):
        anchors = generate_anchors(2, 3, 8, (16,), (1.0, 2.0))
        assert anchors.shape == (2 * 3 * 2, 4)
        # First two anchors share the centre of the first cell.
        np.testing.assert_allclose(box_centers(anchors[:2]), [[4.0, 4.0]] * 2, atol=1e-4)
        # The next cell is one stride to the right.
        np.testing.assert_allclose(box_centers(anchors[2:4]), [[12.0, 4.0]] * 2, atol=1e-4)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_base_anchors((), (1.0,))
        with pytest.raises(ValueError):
            generate_base_anchors((-4,), (1.0,))
        with pytest.raises(ValueError):
            generate_anchors(0, 4, 8, (16,), (1.0,))


class TestNMS:
    def test_keeps_highest_scoring_of_overlapping_pair(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [50, 50, 60, 60]], dtype=np.float32)
        scores = np.array([0.9, 0.8, 0.7], dtype=np.float32)
        keep = nms(boxes, scores, 0.5)
        assert keep.tolist() == [0, 2]

    def test_threshold_one_keeps_everything(self, rng):
        boxes = random_boxes(rng, 8)
        scores = rng.random(8).astype(np.float32)
        assert len(nms(boxes, scores, 1.0)) == 8

    def test_empty_input(self):
        assert nms(np.zeros((0, 4)), np.zeros(0), 0.5).shape == (0,)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            nms(np.zeros((2, 4)), np.zeros(3), 0.5)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            nms(np.zeros((1, 4)), np.zeros(1), 1.5)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.1, 0.9))
    def test_nms_invariants(self, seed, threshold):
        """Kept boxes are sorted by score and mutually non-overlapping above the threshold."""
        rng = np.random.default_rng(seed)
        boxes = random_boxes(rng, 12)
        scores = rng.random(12).astype(np.float32)
        keep = nms(boxes, scores, threshold)
        kept_scores = scores[keep]
        assert np.all(np.diff(kept_scores) <= 1e-6)
        if len(keep) > 1:
            ious = iou_matrix(boxes[keep], boxes[keep])
            off_diag = ious - np.eye(len(keep))
            assert np.all(off_diag <= threshold + 1e-5)

    def test_batched_nms_separates_classes(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]], dtype=np.float32)
        scores = np.array([0.9, 0.8], dtype=np.float32)
        classes = np.array([0, 1])
        keep = batched_nms(boxes, scores, classes, 0.5)
        assert len(keep) == 2

    def test_batched_nms_suppresses_within_class(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]], dtype=np.float32)
        scores = np.array([0.9, 0.8], dtype=np.float32)
        classes = np.array([1, 1])
        keep = batched_nms(boxes, scores, classes, 0.5)
        assert len(keep) == 1

    def test_batched_nms_empty(self):
        assert batched_nms(np.zeros((0, 4)), np.zeros(0), np.zeros(0, np.int64), 0.3).shape == (0,)


class TestMatcher:
    def test_foreground_assignment_above_threshold(self):
        candidates = np.array([[0, 0, 10, 10], [100, 100, 110, 110]], dtype=np.float32)
        gt = np.array([[1, 1, 11, 11]], dtype=np.float32)
        result = match_boxes(candidates, gt, fg_threshold=0.5)
        assert result.labels.tolist() == [1, 0]
        assert result.gt_index.tolist() == [0, -1]
        assert result.num_foreground == 1

    def test_no_ground_truth_all_background(self):
        candidates = np.array([[0, 0, 10, 10]], dtype=np.float32)
        result = match_boxes(candidates, np.zeros((0, 4)))
        assert result.labels.tolist() == [0]
        assert result.max_iou[0] == 0.0

    def test_ignore_band(self):
        candidates = np.array([[0, 0, 10, 10]], dtype=np.float32)
        gt = np.array([[0, 0, 10, 25]], dtype=np.float32)  # IoU = 0.4
        result = match_boxes(candidates, gt, fg_threshold=0.5, bg_threshold=0.3)
        assert result.labels.tolist() == [-1]

    def test_force_match_best_promotes_low_iou_candidate(self):
        candidates = np.array([[0, 0, 4, 4], [50, 50, 60, 60]], dtype=np.float32)
        gt = np.array([[0, 0, 30, 30]], dtype=np.float32)
        loose = match_boxes(candidates, gt, fg_threshold=0.5)
        assert loose.num_foreground == 0
        forced = match_boxes(candidates, gt, fg_threshold=0.5, force_match_best=True)
        assert forced.num_foreground == 1

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            match_boxes(np.zeros((1, 4)), np.zeros((1, 4)), fg_threshold=0.5, bg_threshold=0.7)

    def test_best_gt_selected_among_multiple(self):
        candidates = np.array([[0, 0, 10, 10]], dtype=np.float32)
        gt = np.array([[5, 5, 15, 15], [0, 0, 10, 11]], dtype=np.float32)
        result = match_boxes(candidates, gt, fg_threshold=0.5)
        assert result.gt_index[0] == 1
